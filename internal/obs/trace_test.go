package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceIDFormatAndUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		for j := 0; j < len(id); j++ {
			c := id[j]
			if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
				t.Fatalf("trace ID %q has non-hex byte %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("trace ID %q repeated", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	for _, ok := range []string{"a", "0123456789abcdef", "A-Z_09", strings.Repeat("x", 64)} {
		if !ValidTraceID(ok) {
			t.Errorf("ValidTraceID(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "has space", "semi;colon", "new\nline", strings.Repeat("x", 65), `"quoted"`} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
}

func TestTraceHonorsValidIDAndReplacesInvalid(t *testing.T) {
	if got := NewTrace("deadbeef").ID(); got != "deadbeef" {
		t.Fatalf("NewTrace(valid).ID() = %q, want deadbeef", got)
	}
	got := NewTrace("not a valid id!").ID()
	if got == "not a valid id!" || !ValidTraceID(got) {
		t.Fatalf("NewTrace(invalid).ID() = %q, want fresh valid ID", got)
	}
}

func TestTraceSpanHierarchy(t *testing.T) {
	tr := NewTrace("")
	root := tr.Span("request", A("endpoint", "/v1/analyze"))
	child := root.Child("solve")
	child.Annotate(A("iterations", 42))
	child.End()
	child.Annotate(A("late", "dropped")) // after End: must not appear
	open := root.Child("never-ended")
	_ = open
	root.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.ID != tr.ID() {
		t.Fatalf("snapshot ID = %q, want %q", snap.ID, tr.ID())
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("got %d recorded spans, want 2 (unended spans are not recorded): %+v", len(snap.Spans), snap.Spans)
	}
	// Sorted by creation order: request (id 1), solve (id 2).
	if snap.Spans[0].Name != "request" || snap.Spans[0].Parent != 0 {
		t.Fatalf("span[0] = %+v, want root request span", snap.Spans[0])
	}
	sv := snap.Spans[1]
	if sv.Name != "solve" || sv.Parent != snap.Spans[0].ID {
		t.Fatalf("span[1] = %+v, want solve child of request", sv)
	}
	if sv.Attrs["iterations"] != "42" {
		t.Fatalf("solve attrs = %v, want iterations=42", sv.Attrs)
	}
	if _, ok := sv.Attrs["late"]; ok {
		t.Fatalf("attribute annotated after End leaked into %v", sv.Attrs)
	}
	if snap.Spans[0].Attrs["endpoint"] != "/v1/analyze" {
		t.Fatalf("request attrs = %v", snap.Spans[0].Attrs)
	}
}

func TestNilTraceIsDisabled(t *testing.T) {
	var tr *Trace
	sp := tr.Span("x", A("k", "v"))
	if sp != nil {
		t.Fatalf("nil trace handed out non-nil span")
	}
	sp.Annotate(A("k", "v"))
	sp.End()
	if sp.Child("y") != nil {
		t.Fatalf("nil span handed out non-nil child")
	}
	if sp.Dur() != 0 {
		t.Fatalf("nil span Dur != 0")
	}
	tr.Finish()
	if tr.ID() != "" || tr.Dur() != 0 {
		t.Fatalf("nil trace ID/Dur not zero")
	}
	if snap := tr.Snapshot(); len(snap.Spans) != 0 || snap.ID != "" {
		t.Fatalf("nil trace snapshot = %+v, want empty", snap)
	}

	ctx := context.Background()
	if WithTrace(ctx, nil) != ctx || WithSpan(ctx, nil) != ctx {
		t.Fatalf("attaching nil trace/span changed the context")
	}
	if TraceFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Fatalf("empty context returned non-nil trace/span")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTrace("")
	root := tr.Span("request")
	ctx := WithSpan(WithTrace(context.Background(), tr), root)
	if TraceFrom(ctx) != tr {
		t.Fatalf("TraceFrom did not return the attached trace")
	}
	if SpanFrom(ctx) != root {
		t.Fatalf("SpanFrom did not return the attached span")
	}
	// A layer below opens a child from whatever the context carries.
	child := SpanFrom(ctx).Child("stamp")
	child.End()
	root.End()
	if got := len(tr.Snapshot().Spans); got != 2 {
		t.Fatalf("got %d spans, want 2", got)
	}
}

func TestTraceBufferRecentSlowestFind(t *testing.T) {
	b := NewTraceBuffer(3)
	durs := []float64{5, 1, 9, 2, 7}
	for i, d := range durs {
		b.Add(TraceSnapshot{ID: string(rune('a' + i)), DurMS: d})
	}
	recent, slowest, added := b.Snapshot()
	if added != int64(len(durs)) {
		t.Fatalf("added = %d, want %d", added, len(durs))
	}
	wantRecent := []string{"e", "d", "c"} // newest first
	for i, id := range wantRecent {
		if recent[i].ID != id {
			t.Fatalf("recent = %v, want IDs %v", recent, wantRecent)
		}
	}
	wantSlow := []float64{9, 7, 5} // descending duration
	for i, d := range wantSlow {
		if slowest[i].DurMS != d {
			t.Fatalf("slowest durations = %v, want %v", slowest, wantSlow)
		}
	}
	// "c" (dur 9) is in both buffers; "a" (dur 5) only survives in slowest.
	if _, ok := b.Find("a"); !ok {
		t.Fatalf("trace a should be retained in slowest")
	}
	if _, ok := b.Find("b"); ok {
		t.Fatalf("trace b (fast, aged out) should be gone")
	}
	if ts, ok := b.Find("e"); !ok || ts.DurMS != 7 {
		t.Fatalf("Find(e) = %+v, %v", ts, ok)
	}
}

func TestTraceBufferNilAndDefaults(t *testing.T) {
	var b *TraceBuffer
	b.Add(TraceSnapshot{ID: "x"})
	if r, s, n := b.Snapshot(); r != nil || s != nil || n != 0 {
		t.Fatalf("nil buffer snapshot = %v %v %d", r, s, n)
	}
	if _, ok := b.Find("x"); ok {
		t.Fatalf("nil buffer Find returned a trace")
	}
	if got := NewTraceBuffer(0); got.cap != DefaultTraceBufferCap {
		t.Fatalf("NewTraceBuffer(0) cap = %d, want %d", got.cap, DefaultTraceBufferCap)
	}
}

func TestRegistrySpanRingBounds(t *testing.T) {
	r := NewRegistry()
	r.SetSpanCap(4)
	for i := 0; i < 10; i++ {
		r.Span("s", A("i", i))()
	}
	snap := r.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap.Spans))
	}
	// The survivors are the newest four: i = 6..9.
	got := map[string]bool{}
	for _, sp := range snap.Spans {
		got[sp.Attrs["i"]] = true
	}
	for _, want := range []string{"6", "7", "8", "9"} {
		if !got[want] {
			t.Fatalf("span i=%s missing from retained set %v", want, got)
		}
	}
	if d := r.Counter("obs.spans_dropped").Value(); d != 6 {
		t.Fatalf("spans_dropped = %d, want 6", d)
	}
	// Shrinking below the retained count drops the oldest and counts them.
	r.SetSpanCap(2)
	snap = r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("after shrink retained %d spans, want 2", len(snap.Spans))
	}
	for _, sp := range snap.Spans {
		if sp.Attrs["i"] != "8" && sp.Attrs["i"] != "9" {
			t.Fatalf("after shrink survivor %v, want i=8/9", sp.Attrs)
		}
	}
	if d := r.Counter("obs.spans_dropped").Value(); d != 8 {
		t.Fatalf("spans_dropped after shrink = %d, want 8", d)
	}
}

func TestInfoHistogramExcludedFromDeterministic(t *testing.T) {
	r := NewRegistry()
	r.InfoHistogram("serve.latency_ms", []float64{1, 10}).Observe(3)
	r.Histogram("solve.iters", []float64{10, 100}).Observe(42)
	snap := r.Snapshot()
	if _, ok := snap.Histograms["serve.latency_ms (info)"]; !ok {
		t.Fatalf("info histogram missing its (info) key: %v", snap.Histograms)
	}
	det := snap.Deterministic()
	if _, ok := det.Histograms["serve.latency_ms (info)"]; ok {
		t.Fatalf("info histogram leaked into deterministic snapshot")
	}
	if _, ok := det.Histograms["solve.iters"]; !ok {
		t.Fatalf("regular histogram missing from deterministic snapshot")
	}
	if !strings.Contains(r.Summary(), "(info)") {
		t.Fatalf("Summary does not mark info histogram: %s", r.Summary())
	}
}

func TestGaugeAddDelta(t *testing.T) {
	r := NewRegistry()
	g := r.InfoGauge("inflight")
	g.Add(1)
	g.Add(1)
	g.Add(-1)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge after +1+1-1 = %g, want 1", got)
	}
	var ng *Gauge
	ng.Add(1) // nil-safe
}
