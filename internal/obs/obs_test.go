package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(1)
	r.Gauge("g").SetMax(2)
	r.InfoGauge("ig").Set(3)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	r.Timer("t").Observe(time.Second)
	r.Timer("t").Start()()
	r.Span("s", A("k", 1))()
	r.SweepMetrics("sw").Begin(4).TaskStart()()
	r.SweepMetrics("sw").Begin(4).End()
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	if s := r.Summary(); s != "" {
		t.Fatalf("nil Summary = %q, want empty", s)
	}
	if !json.Valid(r.JSON()) {
		t.Fatalf("nil registry JSON is invalid: %s", r.JSON())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("solves")
	c.Add(2)
	r.Counter("solves").Add(3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("residual")
	g.SetMax(1e-9)
	g.SetMax(1e-7)
	g.SetMax(1e-8)
	if got := g.Value(); got != 1e-7 {
		t.Fatalf("SetMax gauge = %g, want 1e-7", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("Set gauge = %g, want 42", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("iters", []float64{10, 100})
	for _, v := range []float64{1, 10, 11, 100, 1e6} {
		h.Observe(v)
	}
	want := []int64{2, 2, 1} // <=10, <=100, +Inf
	for i, w := range want {
		if got := h.Bucket(i); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := h.sum(), 1.0+10+11+100+1e6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge under a counter name")
		}
	}()
	r.Gauge("x")
}

func TestConcurrentRecordingIsExact(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("max")
	h := r.Histogram("h", []float64{50})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer r.Span("worker")()
			for i := 0; i < per; i++ {
				c.Add(1)
				g.SetMax(float64(w*per + i))
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != float64(workers*per-1) {
		t.Fatalf("max gauge = %g, want %g", got, float64(workers*per-1))
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("hist count = %d, want %d", got, workers*per)
	}
	if got := h.Bucket(0) + h.Bucket(1); got != workers*per {
		t.Fatalf("bucket sum = %d, want %d", got, workers*per)
	}
	if got := len(r.Snapshot().Spans); got != workers {
		t.Fatalf("spans = %d, want %d", got, workers)
	}
}

// TestDeterministicSnapshotBytes replays the same logical workload on two
// registries with different scheduling (serial vs concurrent) and asserts
// the deterministic snapshots marshal to identical bytes.
func TestDeterministicSnapshotBytes(t *testing.T) {
	record := func(r *Registry, concurrent bool) {
		work := func(i int) {
			r.Counter("tasks").Add(1)
			r.Gauge("worst").SetMax(float64(i % 7))
			r.Histogram("sizes", []float64{2, 5}).Observe(float64(i % 10))
			r.InfoGauge("workers").Set(float64(i)) // stripped: run-condition dependent
			r.Timer("t").Observe(time.Duration(i)) // stripped: wall clock
			r.Span("task", A("i", i))()            // stripped: wall clock
		}
		if !concurrent {
			for i := 0; i < 64; i++ {
				work(i)
			}
			return
		}
		var wg sync.WaitGroup
		for i := 0; i < 64; i++ {
			wg.Add(1)
			go func(i int) { defer wg.Done(); work(i) }(i)
		}
		wg.Wait()
	}
	a, b := NewRegistry(), NewRegistry()
	record(a, false)
	record(b, true)
	aj, err := json.Marshal(a.Snapshot().Deterministic())
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b.Snapshot().Deterministic())
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("deterministic snapshots differ:\nserial:     %s\nconcurrent: %s", aj, bj)
	}
	det := a.Snapshot().Deterministic()
	if len(det.Timers) != 0 || len(det.Spans) != 0 {
		t.Fatalf("deterministic snapshot kept timers/spans: %+v", det)
	}
	for name := range det.Gauges {
		if strings.Contains(name, "(info)") {
			t.Fatalf("deterministic snapshot kept info gauge %q", name)
		}
	}
	for _, h := range det.Histograms {
		if h.Sum != 0 {
			t.Fatalf("deterministic snapshot kept histogram sum %g", h.Sum)
		}
	}
}

func TestSnapshotJSONAndExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(7)
	r.Histogram("h", []float64{1}).Observe(0.5)
	done := r.Span("stage", A("design", "2ch-4rank"))
	time.Sleep(time.Millisecond)
	done()
	for _, b := range [][]byte{r.JSON(), []byte(r.String())} {
		if !json.Valid(b) {
			t.Fatalf("invalid JSON: %s", b)
		}
	}
	var s Snapshot
	if err := json.Unmarshal(r.JSON(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["c"] != 7 {
		t.Fatalf("counter in JSON = %d, want 7", s.Counters["c"])
	}
	if len(s.Spans) != 1 || s.Spans[0].Name != "stage" || s.Spans[0].Attrs["design"] != "2ch-4rank" {
		t.Fatalf("span in JSON = %+v", s.Spans)
	}
	if s.Spans[0].DurMS <= 0 {
		t.Fatalf("span duration = %v, want > 0", s.Spans[0].DurMS)
	}
}

func TestSpanOrderingByStart(t *testing.T) {
	r := NewRegistry()
	first := r.Span("first")
	second := r.Span("second")
	second() // closes before first: append order is second, first
	first()
	spans := r.Snapshot().Spans
	if len(spans) != 2 || spans[0].Name != "first" || spans[1].Name != "second" {
		t.Fatalf("span order = %+v, want start order [first second]", spans)
	}
}

func TestSummaryMentionsEveryMetric(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve.total").Add(3)
	r.Gauge("solve.residual").SetMax(1e-9)
	r.Histogram("solve.iters", []float64{10}).Observe(4)
	r.Timer("solve.time").Observe(time.Millisecond)
	r.Span("exp/table6")()
	s := r.Summary()
	for _, want := range []string{"solve.total", "solve.residual", "solve.iters", "solve.time", "exp/table6"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestSweepMetrics(t *testing.T) {
	r := NewRegistry()
	m := r.SweepMetrics("par.sweep")
	run := m.Begin(2)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer run.TaskStart()()
			time.Sleep(100 * time.Microsecond)
		}()
	}
	wg.Wait()
	run.End()
	if got := r.Counter("par.sweep.tasks_started").Value(); got != 6 {
		t.Fatalf("tasks_started = %d, want 6", got)
	}
	if got := r.Counter("par.sweep.tasks_completed").Value(); got != 6 {
		t.Fatalf("tasks_completed = %d, want 6", got)
	}
	if got := r.Timer("par.sweep.busy").Count(); got != 6 {
		t.Fatalf("busy count = %d, want 6", got)
	}
	if u := r.InfoGauge("par.sweep.utilization").Value(); u <= 0 {
		t.Fatalf("utilization = %g, want > 0", u)
	}
	// Utilization is an info gauge: stripped from the deterministic view.
	det := r.Snapshot().Deterministic()
	if _, ok := det.Gauges["par.sweep.utilization"]; ok {
		t.Fatal("utilization leaked into deterministic snapshot")
	}
}
