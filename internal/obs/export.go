package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux for ServeDebug
	"sort"
	"strconv"
	"strings"
	"time"
)

// Snapshot is a point-in-time copy of a registry, shaped for JSON export
// (expvar-compatible: Registry.String renders one as a JSON object).
// encoding/json writes map keys in sorted order, so two snapshots with
// equal contents marshal to identical bytes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]TimerSnapshot     `json:"timers,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// HistogramSnapshot carries a histogram's fixed bounds and bucket
// tallies. Sum is the observation total; it accumulates floats in
// scheduling order, so Deterministic zeroes it while keeping the
// bucket tallies and count.
type HistogramSnapshot struct {
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"`
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum,omitempty"`
}

// TimerSnapshot summarizes a duration accumulator.
type TimerSnapshot struct {
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
	MaxSec  float64 `json:"max_seconds,omitempty"`
}

// SpanSnapshot is one trace span with run-relative timestamps.
type SpanSnapshot struct {
	Name    string            `json:"name"`
	StartMS float64           `json:"start_ms"`
	DurMS   float64           `json:"dur_ms"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Snapshot copies the registry's current state. Safe on nil (returns an
// empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Timers:     map[string]TimerSnapshot{},
	}
	if r == nil {
		return s
	}
	metrics, names := r.metricsByName()
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			s.Counters[name] = m.Value()
		case *Gauge:
			key := name
			if m.info {
				key = name + " (info)"
			}
			s.Gauges[key] = m.Value()
		case *Histogram:
			hs := HistogramSnapshot{
				Bounds:  append([]float64(nil), m.bounds...),
				Buckets: make([]int64, len(m.buckets)),
				Count:   m.Count(),
				Sum:     m.sum(),
			}
			for i := range m.buckets {
				hs.Buckets[i] = m.Bucket(i)
			}
			key := name
			if m.info {
				key = name + " (info)"
			}
			s.Histograms[key] = hs
		case *Timer:
			s.Timers[name] = TimerSnapshot{
				Count:   m.Count(),
				Seconds: m.Total().Seconds(),
				MaxSec:  time.Duration(m.maxNS.Load()).Seconds(),
			}
		}
	}
	for _, sp := range r.spanRecords() {
		ss := SpanSnapshot{
			Name:    sp.name,
			StartMS: float64(sp.start) / 1e6,
			DurMS:   float64(sp.dur) / 1e6,
		}
		if len(sp.attrs) > 0 {
			ss.Attrs = map[string]string{}
			for _, a := range sp.attrs {
				ss.Attrs[a.Key] = a.Value
			}
		}
		s.Spans = append(s.Spans, ss)
	}
	return s
}

// metricsByName copies the metric table under the lock and returns it
// with its keys in sorted order, so exports never depend on map order.
func (r *Registry) metricsByName() (map[string]interface{}, []string) {
	r.mu.Lock()
	metrics := make(map[string]interface{}, len(r.metrics))
	names := make([]string, 0, len(r.metrics))
	for name, m := range r.metrics {
		metrics[name] = m
		names = append(names, name) // ok: sorted below
	}
	r.mu.Unlock()
	sort.Strings(names)
	return metrics, names
}

func (h *Histogram) sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Deterministic strips everything wall-clock-derived or run-condition-
// dependent from the snapshot: timers, spans, info gauges, and histogram
// sums. What remains — counter values, gauge maxima, histogram bucket
// tallies — must be byte-identical across worker counts for one
// workload; the cross-worker regression tests marshal two of these and
// compare the bytes.
func (s Snapshot) Deterministic() Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range s.Gauges {
		if strings.HasSuffix(name, " (info)") {
			continue
		}
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		if strings.HasSuffix(name, " (info)") {
			continue
		}
		h.Sum = 0
		out.Histograms[name] = h
	}
	return out
}

// JSON renders the full snapshot as indented JSON (the -metrics-out
// format). Safe on nil.
func (r *Registry) JSON() []byte {
	// Snapshot holds only marshalable types, so the error is unreachable.
	b, _ := json.MarshalIndent(r.Snapshot(), "", "  ")
	return b
}

// String renders the snapshot as compact JSON, satisfying expvar.Var so
// a registry can be expvar.Publish'ed next to the pprof endpoints.
func (r *Registry) String() string {
	b, _ := json.Marshal(r.Snapshot())
	return string(b)
}

// Summary renders the human-readable -stats report: the span trace in
// start order followed by every metric, sorted by name.
func (r *Registry) Summary() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	spans := r.spanRecords()
	if len(spans) > 0 {
		sb.WriteString("spans (start -> duration):\n")
		for _, sp := range spans {
			fmt.Fprintf(&sb, "  %9.1fms  %-28s %s", float64(sp.start)/1e6, sp.name, sp.dur.Round(100*time.Microsecond))
			for _, a := range sp.attrs {
				fmt.Fprintf(&sb, "  %s=%s", a.Key, a.Value)
			}
			sb.WriteByte('\n')
		}
	}
	metrics, names := r.metricsByName()
	if len(names) > 0 {
		sb.WriteString("metrics:\n")
	}
	for _, name := range names {
		switch m := metrics[name].(type) {
		case *Counter:
			fmt.Fprintf(&sb, "  %-40s %d\n", name, m.Value())
		case *Gauge:
			kind := ""
			if m.info {
				kind = " (info)"
			}
			fmt.Fprintf(&sb, "  %-40s %g%s\n", name, m.Value(), kind)
		case *Histogram:
			kind := ""
			if m.info {
				kind = " (info)"
			}
			fmt.Fprintf(&sb, "  %-40s n=%d mean=%.3g [", name, m.Count(), histMean(m))
			for i := range m.buckets {
				if i > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d", m.Bucket(i))
			}
			fmt.Fprintf(&sb, "] bounds=%v%s\n", m.bounds, kind)
		case *Timer:
			fmt.Fprintf(&sb, "  %-40s n=%d total=%s\n", name, m.Count(), m.Total().Round(100*time.Microsecond))
		}
	}
	return sb.String()
}

// PromText renders every metric in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms with cumulative le-labeled buckets plus _sum/_count, and
// timers as quantile-less summaries in seconds. Metric names are the
// registry names with every character outside [a-zA-Z0-9_:] replaced by
// '_'. Spans are not exported — scrape /debug/requests for traces.
// Safe on nil (returns an empty exposition).
func (r *Registry) PromText() []byte {
	var sb strings.Builder
	if r == nil {
		return []byte{}
	}
	metrics, names := r.metricsByName()
	for _, name := range names {
		pn := promName(name)
		switch m := metrics[name].(type) {
		case *Counter:
			fmt.Fprintf(&sb, "# TYPE %s counter\n%s %d\n", pn, pn, m.Value())
		case *Gauge:
			fmt.Fprintf(&sb, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(m.Value()))
		case *Histogram:
			fmt.Fprintf(&sb, "# TYPE %s histogram\n", pn)
			var cum int64
			for i, b := range m.bounds {
				cum += m.Bucket(i)
				fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", pn, promFloat(b), cum)
			}
			fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", pn, m.Count())
			fmt.Fprintf(&sb, "%s_sum %s\n", pn, promFloat(m.sum()))
			fmt.Fprintf(&sb, "%s_count %d\n", pn, m.Count())
		case *Timer:
			fmt.Fprintf(&sb, "# TYPE %s_seconds summary\n", pn)
			fmt.Fprintf(&sb, "%s_seconds_sum %s\n", pn, promFloat(m.Total().Seconds()))
			fmt.Fprintf(&sb, "%s_seconds_count %d\n", pn, m.Count())
		}
	}
	return []byte(sb.String())
}

// promName maps a registry metric name onto the Prometheus name
// alphabet.
func promName(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case '0' <= c && c <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a float sample value (shortest round-trip form).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func histMean(h *Histogram) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.sum() / float64(n)
}

// ServeDebug starts an HTTP server on addr exposing the default mux —
// net/http/pprof's /debug/pprof and expvar's /debug/vars (publish the
// run's registry with expvar.Publish to include it there). It returns
// immediately; the server lives until the process exits. The goroutine
// below is deliberate: a debug listener is not analysis concurrency and
// must outlive any worker pool, so it cannot ride internal/par.
func ServeDebug(addr string, errlog func(format string, args ...interface{})) {
	//pdnlint:ignore rawgo the pprof/expvar listener is process-lifetime background I/O, not bounded analysis work; internal/par pools would block on it
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil && errlog != nil {
			errlog("obs: debug server on %s: %v", addr, err)
		}
	}()
}
