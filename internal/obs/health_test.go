package obs

import (
	"runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestHealthSamplerGaugesAreInfoOnly(t *testing.T) {
	r := NewRegistry()
	stop := r.StartHealthSampler(time.Hour) // one synchronous sample only
	defer stop()

	snap := r.Snapshot()
	for _, hs := range healthSamples {
		key := hs.gauge + " (info)"
		if _, ok := snap.Gauges[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	if v := snap.Gauges["health.heap_bytes (info)"]; v <= 0 {
		t.Errorf("health.heap_bytes = %g, want > 0 from the synchronous prime", v)
	}
	if v := snap.Gauges["health.goroutines (info)"]; v < 1 {
		t.Errorf("health.goroutines = %g, want >= 1", v)
	}

	// Deterministic snapshots must carry no health gauge at all.
	det := snap.Deterministic()
	for name := range det.Gauges {
		if strings.HasPrefix(name, "health.") {
			t.Errorf("deterministic snapshot leaked health gauge %q", name)
		}
	}
}

func TestHealthSamplerStopIdempotent(t *testing.T) {
	r := NewRegistry()
	stop := r.StartHealthSampler(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // second stop must not panic or hang

	var nilReg *Registry
	nilStop := nilReg.StartHealthSampler(time.Millisecond)
	nilStop() // nil registry: no sampler, stop is a no-op
}

func TestHistP99(t *testing.T) {
	// 100 observations: 99 in (0, 1], 1 in (1, 2] → p99 upper bound 1.
	h := &metrics.Float64Histogram{
		Counts:  []uint64{99, 1},
		Buckets: []float64{0, 1, 2},
	}
	if got := histP99(h); got != 1 {
		t.Fatalf("histP99 = %g, want 1", got)
	}
	// All mass in the overflow bucket falls back to its finite lower
	// bound instead of +Inf.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{0, 7},
		Buckets: []float64{0, 1, 1e300},
	}
	if got := histP99(inf); got != 1 {
		t.Fatalf("histP99 overflow fallback = %g, want 1", got)
	}
	if got := histP99(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}); got != 0 {
		t.Fatalf("histP99 empty = %g, want 0", got)
	}
	if got := histP99(nil); got != 0 {
		t.Fatalf("histP99 nil = %g, want 0", got)
	}
}
