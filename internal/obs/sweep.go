package obs

import (
	"sync/atomic"
	"time"
)

// SweepMetrics instruments a worker-pool sweep (internal/par): task
// counts, queue wait (sweep start to task start), per-task busy time,
// and the last sweep's worker utilization. Started/Completed are
// deterministic for error-free sweeps; the wait/busy timers and the
// utilization gauge are wall-clock-derived and excluded from the
// deterministic snapshot.
type SweepMetrics struct {
	Started, Completed *Counter
	Wait, Busy         *Timer
	Utilization        *Gauge
}

// SweepMetrics returns the sweep instrument rooted at prefix, creating
// its metrics on first use. Returns nil on a nil registry.
func (r *Registry) SweepMetrics(prefix string) *SweepMetrics {
	if r == nil {
		return nil
	}
	return &SweepMetrics{
		Started:     r.Counter(prefix + ".tasks_started"),
		Completed:   r.Counter(prefix + ".tasks_completed"),
		Wait:        r.Timer(prefix + ".queue_wait"),
		Busy:        r.Timer(prefix + ".busy"),
		Utilization: r.InfoGauge(prefix + ".utilization"),
	}
}

// SweepRun tracks one sweep invocation against its metrics. The zero of
// a nil *SweepMetrics is a nil *SweepRun, on which every method is a
// no-op.
type SweepRun struct {
	m       *SweepMetrics
	start   time.Time
	workers int
	busyNS  atomic.Int64
}

// Begin opens one sweep over the given worker budget.
func (m *SweepMetrics) Begin(workers int) *SweepRun {
	if m == nil {
		return nil
	}
	return &SweepRun{m: m, start: now(), workers: workers}
}

// TaskStart records one task picking up work (counting its queue wait)
// and returns the completion function that records its busy time.
func (s *SweepRun) TaskStart() func() {
	if s == nil {
		return func() {}
	}
	ts := now()
	s.m.Started.Add(1)
	s.m.Wait.Observe(ts.Sub(s.start))
	return func() {
		busy := now().Sub(ts)
		s.busyNS.Add(int64(busy))
		s.m.Busy.Observe(busy)
		s.m.Completed.Add(1)
	}
}

// End closes the sweep, recording worker utilization — total busy time
// over workers x elapsed, 1.0 when every worker computed the whole time.
func (s *SweepRun) End() {
	if s == nil {
		return
	}
	elapsed := now().Sub(s.start)
	if elapsed > 0 && s.workers > 0 {
		s.m.Utilization.Set(float64(s.busyNS.Load()) / (float64(elapsed) * float64(s.workers)))
	}
}
