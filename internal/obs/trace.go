package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request-scoped trace: a deterministic-format ID plus a
// set of hierarchical spans recorded as the request moves through the
// serving layers (admission queue, cache, stamp, solve, serialize).
// Traces are wall-clock data — never part of the deterministic metrics
// contract — but their structural fields (span names, parent/child
// relations, item indices, solver iteration counts) are deterministic
// for a given request at any worker count, which is what the batch
// propagation test pins.
//
// Every method is nil-safe: a nil *Trace hands out nil *TraceSpans, and
// recording on a nil span is a no-op, so instrumented layers need no
// conditionals when tracing is absent (CLI paths, tracing disabled).
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	seq   int
	spans []TraceSpanSnapshot
	dur   time.Duration
	done  bool
}

// TraceSpan is one open span of a Trace. Create with Trace.Span or
// TraceSpan.Child; close with End, which records the span on its trace.
// A span that never Ends is never recorded.
type TraceSpan struct {
	t      *Trace
	id     int
	parent int
	name   string
	start  time.Duration

	mu    sync.Mutex
	attrs []Attr
	dur   time.Duration
	ended bool
}

// NewTrace builds a trace with the given ID; an empty or invalid ID
// selects a fresh NewTraceID.
func NewTrace(id string) *Trace {
	if !ValidTraceID(id) {
		id = NewTraceID()
	}
	return &Trace{id: id, start: now()}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span opens a root-level span. Safe on nil (returns a nil span).
func (t *Trace) Span(name string, attrs ...Attr) *TraceSpan {
	return t.newSpan(0, name, attrs)
}

func (t *Trace) newSpan(parent int, name string, attrs []Attr) *TraceSpan {
	if t == nil {
		return nil
	}
	start := now()
	t.mu.Lock()
	t.seq++
	id := t.seq
	t.mu.Unlock()
	return &TraceSpan{
		t:      t,
		id:     id,
		parent: parent,
		name:   name,
		start:  start.Sub(t.start),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// Child opens a span nested under s. Safe on nil (returns nil).
func (s *TraceSpan) Child(name string, attrs ...Attr) *TraceSpan {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.id, name, attrs)
}

// Annotate appends attributes to the span; attributes added after End
// are dropped. No-op on nil.
func (s *TraceSpan) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
	s.mu.Unlock()
}

// End closes the span and records it on its trace. Only the first End
// takes effect. No-op on nil.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	end := now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = end.Sub(s.t.start) - s.start
	snap := TraceSpanSnapshot{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartMS: float64(s.start) / 1e6,
		DurMS:   float64(s.dur) / 1e6,
	}
	if len(s.attrs) > 0 {
		snap.Attrs = map[string]string{}
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, snap)
	s.t.mu.Unlock()
}

// Dur returns the span duration (0 before End or on nil).
func (s *TraceSpan) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Finish closes the trace, fixing its total duration. Only the first
// Finish takes effect. No-op on nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	end := now()
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.dur = end.Sub(t.start)
	}
	t.mu.Unlock()
}

// Dur returns the trace's total duration: fixed by Finish, running
// until then. 0 on nil.
func (t *Trace) Dur() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.dur
	}
	return now().Sub(t.start)
}

// TraceSnapshot is one completed trace shaped for JSON export
// (/debug/requests). Field names are a compatibility contract; see
// DESIGN.md §5e.
type TraceSnapshot struct {
	// ID is the trace ID echoed in X-Trace-Id.
	ID string `json:"trace_id"`
	// Start is the wall-clock trace start (UTC, RFC 3339).
	Start string `json:"start"`
	// DurMS is the total trace duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Spans holds the recorded spans in creation order.
	Spans []TraceSpanSnapshot `json:"spans,omitempty"`
}

// TraceSpanSnapshot is one recorded span of a trace.
type TraceSpanSnapshot struct {
	// ID is the span's trace-local ID (1-based, creation order).
	ID int `json:"id"`
	// Parent is the parent span ID (0 for root-level spans).
	Parent int `json:"parent,omitempty"`
	// Name is the phase name (request, queue, cache, flight, item,
	// stamp, solve, serialize).
	Name string `json:"name"`
	// StartMS is the span start relative to the trace start.
	StartMS float64 `json:"start_ms"`
	// DurMS is the span duration in milliseconds.
	DurMS float64 `json:"dur_ms"`
	// Attrs carries the span annotations (outcome, item, iterations, …).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Snapshot copies the trace's recorded spans, sorted by span ID
// (creation order — stable under concurrent recording). Safe on nil.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	out := TraceSnapshot{
		ID:    t.id,
		Start: t.start.UTC().Format(time.RFC3339Nano),
		DurMS: float64(t.dur) / 1e6,
		Spans: append([]TraceSpanSnapshot(nil), t.spans...),
	}
	if !t.done {
		out.DurMS = float64(now().Sub(t.start)) / 1e6
	}
	t.mu.Unlock()
	sortSpansByID(out.Spans)
	return out
}

func sortSpansByID(spans []TraceSpanSnapshot) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].ID < spans[j-1].ID; j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

// traceSeq and traceBase make trace IDs unique within a process without
// consulting the wall clock: a random 64-bit base from crypto/rand,
// whitened with a Weyl sequence per ID. The format — 16 lowercase hex
// characters — is the deterministic part of the contract; values are
// necessarily random.
var (
	traceSeq  atomic.Uint64
	traceBase = func() uint64 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			// A broken system entropy source should not take request
			// serving down; fall back to the sequence alone.
			return 0
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// NewTraceID returns a fresh 16-hex-character trace ID, unique within
// the process.
func NewTraceID() string {
	return fmt.Sprintf("%016x", traceBase^(traceSeq.Add(1)*0x9e3779b97f4a7c15))
}

// ValidTraceID reports whether s is acceptable as an inbound trace ID:
// 1–64 characters of [0-9a-zA-Z_-]. Anything else is replaced rather
// than echoed, so a hostile header cannot inject into logs or traces.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case '0' <= c && c <= '9', 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

type traceCtxKey struct{}
type spanCtxKey struct{}

// WithTrace attaches t to the context. A nil trace leaves ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// WithSpan attaches the active span to the context, so nested layers
// (par fan-out, irdrop stamp/solve) hang their children under it. A nil
// span leaves ctx unchanged.
func WithSpan(ctx context.Context, s *TraceSpan) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFrom returns the context's active span, or nil.
func SpanFrom(ctx context.Context) *TraceSpan {
	s, _ := ctx.Value(spanCtxKey{}).(*TraceSpan)
	return s
}

// TraceBuffer retains finished request traces for post-hoc inspection
// (/debug/requests): a ring of the N most recent plus the N slowest
// seen, each bounded, so a long-running server holds a fixed amount of
// trace data no matter how much traffic it serves. Safe for concurrent
// use; nil disables retention.
type TraceBuffer struct {
	mu      sync.Mutex
	cap     int
	recent  []TraceSnapshot // ring; next is the oldest once full
	next    int
	slowest []TraceSnapshot // sorted by DurMS descending, len <= cap
	added   int64
}

// DefaultTraceBufferCap bounds each retention class when the size knob
// is unset.
const DefaultTraceBufferCap = 64

// NewTraceBuffer builds a buffer retaining n recent and n slowest
// traces (n <= 0 selects DefaultTraceBufferCap).
func NewTraceBuffer(n int) *TraceBuffer {
	if n <= 0 {
		n = DefaultTraceBufferCap
	}
	return &TraceBuffer{cap: n}
}

// Add records one finished trace. No-op on nil.
func (b *TraceBuffer) Add(s TraceSnapshot) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.added++
	if len(b.recent) < b.cap {
		b.recent = append(b.recent, s)
	} else {
		b.recent[b.next] = s
		b.next = (b.next + 1) % b.cap
	}
	if len(b.slowest) < b.cap {
		b.slowest = append(b.slowest, s)
	} else if s.DurMS > b.slowest[len(b.slowest)-1].DurMS {
		b.slowest[len(b.slowest)-1] = s
	} else {
		return
	}
	// Restore descending order: bubble the inserted tail entry up.
	for i := len(b.slowest) - 1; i > 0 && b.slowest[i].DurMS > b.slowest[i-1].DurMS; i-- {
		b.slowest[i], b.slowest[i-1] = b.slowest[i-1], b.slowest[i]
	}
}

// Snapshot returns the retained traces: recent newest-first, slowest
// in descending duration, and the total number of traces ever added.
// Safe on nil.
func (b *TraceBuffer) Snapshot() (recent, slowest []TraceSnapshot, added int64) {
	if b == nil {
		return nil, nil, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	recent = make([]TraceSnapshot, 0, len(b.recent))
	// The ring's next slot holds the oldest entry once full (and stays 0
	// while filling), so the newest entry sits just before it; walk
	// backwards from there.
	for i := 0; i < len(b.recent); i++ {
		recent = append(recent, b.recent[(b.next-1-i+2*len(b.recent))%len(b.recent)])
	}
	slowest = append([]TraceSnapshot(nil), b.slowest...)
	return recent, slowest, b.added
}

// Find returns the retained trace with the given ID, preferring the
// recent ring. Safe on nil.
func (b *TraceBuffer) Find(id string) (TraceSnapshot, bool) {
	if b == nil {
		return TraceSnapshot{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.recent {
		if b.recent[i].ID == id {
			return b.recent[i], true
		}
	}
	for i := range b.slowest {
		if b.slowest[i].ID == id {
			return b.slowest[i], true
		}
	}
	return TraceSnapshot{}, false
}
