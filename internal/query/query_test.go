package query

import (
	"errors"
	"strings"
	"testing"
)

func valid() Query {
	return Query{Bench: "ddr3-off", State: "0-0-0-2", IO: 1.0}
}

// The table-driven validator test CLI and server both lean on: every
// rejected input names the offending field through a *FieldError.
func TestValidate(t *testing.T) {
	tests := []struct {
		name      string
		mut       func(*Query)
		wantField string // "" = valid
	}{
		{"baseline", func(q *Query) {}, ""},
		{"full overrides", func(q *Query) {
			q.Bonding, q.Style, q.RDL, q.TSV, q.Pitch = "f2f", "e", "interface", 33, 0.5
		}, ""},
		{"io smallest covered", func(q *Query) { q.IO = 0.25 }, ""},

		{"missing bench", func(q *Query) { q.Bench = "" }, "bench"},
		{"io zero", func(q *Query) { q.IO = 0 }, "io"},
		{"io negative", func(q *Query) { q.IO = -0.5 }, "io"},
		{"io above one", func(q *Query) { q.IO = 1.01 }, "io"},
		{"negative tsv", func(q *Query) { q.TSV = -1 }, "tsv"},
		{"negative pitch", func(q *Query) { q.Pitch = -0.2 }, "pitch"},
		{"bad bonding", func(q *Query) { q.Bonding = "F2X" }, "bonding"},
		{"bad style", func(q *Query) { q.Style = "Q" }, "style"},
		{"bad rdl", func(q *Query) { q.RDL = "some" }, "rdl"},
		{"bad state syntax", func(q *Query) { q.State = "0-x-0-2" }, "state"},
		{"negative state count", func(q *Query) { q.State = "0--1-0-2" }, "state"},
		{"empty state", func(q *Query) { q.State = "" }, "state"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := valid()
			tc.mut(&q)
			err := q.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate: want error on field %q", tc.wantField)
			}
			var fe *FieldError
			if !errors.As(err, &fe) {
				t.Fatalf("error %v is not a *FieldError", err)
			}
			if fe.Field != tc.wantField {
				t.Errorf("error field = %q, want %q (%v)", fe.Field, tc.wantField, err)
			}
		})
	}
}

// Design-dependent rejections only Resolve can make.
func TestResolveRejects(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Query)
		want string
	}{
		{"unknown bench", func(q *Query) { q.Bench = "lpddr5" }, "bench"},
		{"wrong die count", func(q *Query) { q.State = "0-0-2" }, "state"},
		{"count over banks", func(q *Query) { q.State = "0-0-0-99" }, "state"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			q := valid()
			tc.mut(&q)
			_, err := q.Resolve()
			var fe *FieldError
			if err == nil || !errors.As(err, &fe) || fe.Field != tc.want {
				t.Fatalf("Resolve = %v, want *FieldError on %q", err, tc.want)
			}
		})
	}
}

func TestResolveAppliesOverrides(t *testing.T) {
	q := valid()
	q.Bonding, q.Style, q.RDL = "F2F", "C", "interface"
	q.TSV, q.Pitch = 64, 0.5
	q.Wirebond = true
	r, err := q.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.TSVCount != 64 || r.Spec.MeshPitch != 0.5 || !r.Spec.WireBond {
		t.Errorf("overrides not applied: %+v", r.Spec)
	}
	if got := r.Spec.Bonding.String(); got != "F2F" {
		t.Errorf("bonding = %s", got)
	}
	if got := r.State.String(); got != "0-0-0-2" {
		t.Errorf("state = %s", got)
	}
}

// The cache key must separate design, state, and io changes.
func TestCacheKeySeparatesAxes(t *testing.T) {
	base, err := valid().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	muts := []func(*Query){
		func(q *Query) { q.TSV = 64 },
		func(q *Query) { q.State = "0-0-2-0" },
		func(q *Query) { q.IO = 0.5 },
		func(q *Query) { q.Bonding = "F2F" },
	}
	seen := map[string]bool{base.CacheKey(): true}
	for i, mut := range muts {
		q := valid()
		mut(&q)
		r, err := q.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.CacheKey()] {
			t.Errorf("mutation %d collided with a previous key", i)
		}
		seen[r.CacheKey()] = true
	}
	again, err := valid().Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheKey() != base.CacheKey() {
		t.Error("identical queries produced different cache keys")
	}
}

// Error strings stay in the shared "memstate: bad state" format so the
// CLIs and the server report state problems identically.
func TestStateErrorsShareFormat(t *testing.T) {
	q := valid()
	q.State = "0-0-2"
	_, err := q.Resolve()
	if err == nil || !strings.Contains(err.Error(), "memstate: bad state") {
		t.Errorf("error %v missing shared memstate format", err)
	}
}
