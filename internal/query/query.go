// Package query defines the one IR-drop query shape shared by every entry
// point — the irsim CLI flags and the pdnserve JSON API both decode into a
// Query — so input validation (I/O activity range, TSV count, mesh pitch,
// state-string syntax and design bounds) lives in exactly one validator
// and cannot drift between the command line and the network surface.
package query

import (
	"fmt"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/speckey"
)

// Query is one IR-drop analysis request: a benchmark design, optional
// packaging overrides, a memory state, and the per-die I/O activity.
// The JSON tags define the /v1/analyze request schema.
type Query struct {
	// Bench names the base benchmark: "ddr3-off", "ddr3-on", "wideio",
	// "hmc".
	Bench string `json:"bench"`
	// State is the memory state in the paper's "R1-R2-...-Rn" notation.
	State string `json:"state"`
	// IO is the per-die I/O activity in (0,1].
	IO float64 `json:"io"`

	// Bonding overrides the stacking style ("F2B" or "F2F"; empty keeps
	// the benchmark default).
	Bonding string `json:"bonding,omitempty"`
	// TSV overrides the PG TSV count (0 keeps the default).
	TSV int `json:"tsv,omitempty"`
	// Style overrides the TSV placement style ("C", "E", "D").
	Style string `json:"style,omitempty"`
	// RDL overrides redistribution-layer insertion ("none", "interface",
	// "all").
	RDL string `json:"rdl,omitempty"`
	// Wirebond adds backside wire bonding.
	Wirebond bool `json:"wirebond,omitempty"`
	// Dedicated adds dedicated via-last TSVs (on-chip designs).
	Dedicated bool `json:"dedicated,omitempty"`
	// Align aligns TSVs to C4 bumps (on-chip designs).
	Align bool `json:"align,omitempty"`
	// Pitch overrides the R-Mesh pitch in mm (0 keeps the default).
	Pitch float64 `json:"pitch,omitempty"`
}

// FieldError reports which query field failed validation; entry points
// render it directly (the CLI as a flag error, the server as HTTP 400).
type FieldError struct {
	// Field is the JSON name / flag name of the offending field.
	Field string
	// Msg says what is wrong with it.
	Msg string
}

func (e *FieldError) Error() string { return fmt.Sprintf("query: -%s: %s", e.Field, e.Msg) }

func fieldErr(field, format string, args ...interface{}) error {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// validateDesign checks the design-selecting fields alone (benchmark name,
// numeric ranges, enum spellings) — everything a state-free request like a
// LUT build needs.
func (q Query) validateDesign() error {
	if q.Bench == "" {
		return fieldErr("bench", "benchmark name required")
	}
	if q.TSV < 0 {
		return fieldErr("tsv", "TSV count %d must be >= 0 (0 keeps the benchmark default)", q.TSV)
	}
	if q.Pitch < 0 {
		return fieldErr("pitch", "mesh pitch %g mm must be >= 0 (0 keeps the benchmark default)", q.Pitch)
	}
	if q.Bonding != "" {
		if _, err := pdn.ParseBonding(q.Bonding); err != nil {
			return fieldErr("bonding", "%v", err)
		}
	}
	if q.Style != "" {
		if _, err := pdn.ParseTSVLocation(q.Style); err != nil {
			return fieldErr("style", "%v", err)
		}
	}
	if q.RDL != "" {
		if _, err := pdn.ParseRDL(q.RDL); err != nil {
			return fieldErr("rdl", "%v", err)
		}
	}
	return nil
}

// Validate checks every field that can be checked without loading the
// benchmark: numeric ranges, enum spellings, and state-string syntax.
// Design-dependent checks (die count, per-die bank cap) happen in Resolve.
func (q Query) Validate() error {
	if err := q.validateDesign(); err != nil {
		return err
	}
	if q.IO <= 0 || q.IO > 1 {
		return fieldErr("io", "activity %g out of (0,1]", q.IO)
	}
	if _, err := memstate.ParseCounts(q.State); err != nil {
		return fieldErr("state", "%v", err)
	}
	return nil
}

// Resolved is a query bound to its benchmark: the overridden spec, the
// explicit memory state, and the power models the analyzer needs.
type Resolved struct {
	// Query is the validated input.
	Query Query
	// Bench is the loaded base benchmark.
	Bench *bench3d.Benchmark
	// Spec is the cloned spec with every override applied.
	Spec *pdn.Spec
	// Counts is the parsed per-die active-bank vector.
	Counts []int
	// State is the explicit state at the paper's worst-case placement.
	State memstate.State
	// Logic is the logic-die power model (nil for off-chip designs).
	Logic *powermap.LogicModel
}

// ResolveDesign is Resolve for state-free requests (LUT builds): it
// validates and binds only the design-selecting fields; State and IO are
// ignored and may be empty. Counts and State in the result are zero values.
func (q Query) ResolveDesign() (*Resolved, error) {
	if err := q.validateDesign(); err != nil {
		return nil, err
	}
	b, err := bench3d.ByName(q.Bench)
	if err != nil {
		return nil, fieldErr("bench", "%v", err)
	}
	spec := b.Spec.Clone()
	if q.Bonding != "" {
		spec.Bonding, _ = pdn.ParseBonding(q.Bonding)
	}
	if q.TSV > 0 {
		spec.TSVCount = q.TSV
	}
	if q.Style != "" {
		spec.TSVStyle, _ = pdn.ParseTSVLocation(q.Style)
	}
	if q.RDL != "" {
		spec.RDL, _ = pdn.ParseRDL(q.RDL)
	}
	if q.Wirebond {
		spec.WireBond = true
	}
	if q.Dedicated {
		spec.DedicatedTSV = true
	}
	if q.Align {
		spec.AlignTSV = true
	}
	if q.Pitch > 0 {
		spec.MeshPitch = q.Pitch
	}
	r := &Resolved{Query: q, Bench: b, Spec: spec}
	if spec.OnLogic {
		r.Logic = b.LogicPower
	}
	return r, nil
}

// Resolve validates the query, loads its benchmark, applies the packaging
// overrides to a cloned spec, and binds the memory state against the
// design's die and bank counts.
func (q Query) Resolve() (*Resolved, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	r, err := q.ResolveDesign()
	if err != nil {
		return nil, err
	}
	spec := r.Spec
	counts, err := memstate.ParseCountsFor(q.State, spec.NumDRAM, spec.DRAM.NumBanks)
	if err != nil {
		return nil, fieldErr("state", "%v", err)
	}
	state, err := memstate.FromCounts(counts, memstate.WorstCaseEdge(spec.DRAM.NumBanks))
	if err != nil {
		return nil, fieldErr("state", "%v", err)
	}
	r.Counts, r.State = counts, state
	return r, nil
}

// SpecKey canonically fingerprints the resolved design (shared speckey
// contract): two queries whose overrides produce the same design share it.
func (r *Resolved) SpecKey() string {
	return speckey.Spec(r.Spec, r.Logic != nil)
}

// TopoKey fingerprints only the resolved design's mesh shape
// (speckey.Topology): queries that differ in metal-usage magnitudes alone
// share it, which is what lets the serving layer reuse a frozen
// rmesh.Topology across near-identical designs.
func (r *Resolved) TopoKey() string {
	return speckey.Topology(r.Spec)
}

// CacheKey canonically identifies the full analysis (design, explicit
// state, I/O activity): the serving layer's result-cache and singleflight
// key. Length-prefixed framing keeps the three parts from absorbing each
// other.
func (r *Resolved) CacheKey() string {
	var k speckey.Builder
	k.Str(r.SpecKey())
	k.Str(r.State.Key())
	k.Float(r.Query.IO)
	return k.String()
}
