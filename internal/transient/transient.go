// Package transient extends the DC platform with an RC transient analysis —
// the paper's closing observation that backside bond wires "can directly
// connect to large off-chip decoupling capacitors, which provide better AC
// power integrity" (§4.1) made quantitative.
//
// The model augments the R-Mesh conductance system with on-die node
// capacitance (thin-oxide decap + device loading) and series-RC decap
// branches to the ideal supply, then steps C·dv/dt + G·v = i(t) with
// backward Euler. The stepped system matrix (G + C/Δt + decap companions)
// is SPD, so the same IC(0)-preconditioned CG solves every step; it is
// factored once.
package transient

import (
	"fmt"

	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
	"pdn3d/internal/sparse"
)

// Decap is a series-RC decoupling branch from a mesh node to the ideal
// supply: an off-chip capacitor reached through a bond wire or ball.
type Decap struct {
	// Node is the mesh attachment node.
	Node int
	// C is the capacitance in farads.
	C float64
	// R is the series (access) resistance in ohms.
	R float64
}

// Config parameterizes the transient model.
type Config struct {
	// DieCapFPerMM2 is the on-die capacitance density on load layers in
	// farads per mm² (thin-oxide decap fill plus device loading;
	// ~1-5 nF/mm² for a 20nm-class DRAM).
	DieCapFPerMM2 float64
	// Decaps lists explicit decap branches.
	Decaps []Decap
	// TieL is the package loop inductance in henries added in series with
	// every supply landing (C4/ball + plane path; ~0.1-0.5 nH). It is the
	// mechanism that makes local decaps matter: during the first
	// nanoseconds the inductive supply cannot ramp, so charge must come
	// from capacitance. Zero disables it.
	TieL float64
	// WireTieL is the inductance of the bond-wire supply ties (~1 nH/mm of
	// wire). Zero disables it.
	WireTieL float64
	// Dt is the time step in seconds.
	Dt float64
	// Tol is the per-step CG tolerance (0 selects 1e-9).
	Tol float64
}

// DefaultConfig returns plausible constants: 2 nF/mm² die capacitance,
// 0.3 nH package-loop inductance per landing, 0.8 nH per bond wire, and a
// 0.625 ns step (one step per DDR3-1600 data beat pair).
func DefaultConfig() Config {
	return Config{
		DieCapFPerMM2: 2e-9,
		TieL:          0.3e-9,
		WireTieL:      0.8e-9,
		Dt:            0.625e-9,
	}
}

// Sim is a prepared transient simulation on one R-Mesh model.
type Sim struct {
	model *rmesh.Model
	cfg   Config

	a      *sparse.CSR // G + C/dt + companions
	pre    *solve.ICPreconditioner
	cap    []float64 // per-node capacitance (diagonal C)
	decapG []float64 // companion conductance per decap
	vc     []float64 // decap internal capacitor voltages (state)
	v      []float64 // node voltages (state)

	// Inductive supply ties (companion models): per tie the original DC
	// conductance (removed from the matrix), the transient companion
	// conductance, and the branch-current state.
	indNode []int
	indG0   []float64 // DC tie conductance g = 1/R
	indG    []float64 // companion conductance g' = 1/(R + L/dt)
	indLdt  []float64 // L/dt
	iL      []float64 // branch current state (A)
}

// New builds the stepped system. The simulation starts from the DC
// solution of rhsInit (usually the idle state).
func New(model *rmesh.Model, cfg Config, rhsInit []float64) (*Sim, error) {
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("transient: time step %g must be positive", cfg.Dt)
	}
	if cfg.DieCapFPerMM2 < 0 {
		return nil, fmt.Errorf("transient: negative capacitance density")
	}
	if len(rhsInit) != model.N() {
		return nil, fmt.Errorf("transient: rhs length %d != %d nodes", len(rhsInit), model.N())
	}
	s := &Sim{model: model, cfg: cfg, cap: make([]float64, model.N())}

	// On-die capacitance on the load layers, proportional to node area.
	for _, l := range model.Layers {
		if !l.IsLoad {
			continue
		}
		perNode := cfg.DieCapFPerMM2 * l.Grid.StepX() * l.Grid.StepY()
		for n := l.Offset; n < l.Offset+l.Grid.N(); n++ {
			s.cap[n] = perNode
		}
	}

	// Assemble A = G + C/dt + Σ companion conductances.
	b := sparse.NewBuilder(model.N())
	g := model.Matrix
	for i := 0; i < g.N; i++ {
		for p := g.RowPtr[i]; p < g.RowPtr[i+1]; p++ {
			b.Add(i, int(g.Col[p]), g.Val[p])
		}
		if s.cap[i] > 0 {
			b.Add(i, i, s.cap[i]/cfg.Dt)
		}
	}

	// Inductive supply ties: swap each tie's DC conductance for its
	// series-RL backward-Euler companion.
	if cfg.TieL > 0 || cfg.WireTieL > 0 {
		if cfg.TieL < 0 || cfg.WireTieL < 0 {
			return nil, fmt.Errorf("transient: negative tie inductance")
		}
		for _, l := range model.Links {
			if l.N2 >= 0 {
				continue // not a supply tie
			}
			var ind float64
			switch l.Kind {
			case rmesh.LinkLanding:
				ind = cfg.TieL
			case rmesh.LinkWire:
				ind = cfg.WireTieL
			default:
				continue
			}
			if ind == 0 {
				continue
			}
			r := 1 / l.G
			gp := 1 / (r + ind/cfg.Dt)
			b.Add(l.N1, l.N1, gp-l.G) // remove DC tie, add companion
			s.indNode = append(s.indNode, l.N1)
			s.indG0 = append(s.indG0, l.G)
			s.indG = append(s.indG, gp)
			s.indLdt = append(s.indLdt, ind/cfg.Dt)
			s.iL = append(s.iL, 0)
		}
	}
	s.decapG = make([]float64, len(cfg.Decaps))
	s.vc = make([]float64, len(cfg.Decaps))
	for k, d := range cfg.Decaps {
		if d.Node < 0 || d.Node >= model.N() {
			return nil, fmt.Errorf("transient: decap %d at node %d out of range", k, d.Node)
		}
		if d.C <= 0 || d.R < 0 {
			return nil, fmt.Errorf("transient: decap %d needs C > 0 and R >= 0", k)
		}
		// Backward-Euler companion of the series R-C branch between the
		// node and the capacitor's internal voltage vc:
		//   i = (v - vc) / (R + dt/C), then vc += i·dt/C.
		s.decapG[k] = 1 / (d.R + cfg.Dt/d.C)
		b.Add(d.Node, d.Node, s.decapG[k])
		s.vc[k] = model.VDD
	}
	s.a = b.Compress()
	pre, err := solve.NewIC(s.a)
	if err != nil {
		return nil, fmt.Errorf("transient: preconditioner: %w", err)
	}
	s.pre = pre

	// Initial condition: DC solve of the init state on the original G;
	// inductor currents start at their DC values.
	v0, _, err := model.Solve(rhsInit, solve.Options{CGOptions: solve.CGOptions{Tol: s.tol()}})
	if err != nil {
		return nil, fmt.Errorf("transient: initial DC solve: %w", err)
	}
	s.v = v0
	for k, n := range s.indNode {
		s.iL[k] = s.indG0[k] * (model.VDD - v0[n])
	}
	return s, nil
}

func (s *Sim) tol() float64 {
	if s.cfg.Tol > 0 {
		return s.cfg.Tol
	}
	return 1e-9
}

// V returns the current node-voltage state.
func (s *Sim) V() []float64 { return s.v }

// MaxIR returns the worst DRAM-die IR drop of the current state in volts.
func (s *Sim) MaxIR() float64 {
	ir := s.model.IRDrop(s.v)
	var mx float64
	for d := 0; d < s.model.Spec.NumDRAM; d++ {
		if v := s.model.DieMaxIR(ir, d); v > mx {
			mx = v
		}
	}
	return mx
}

// Step advances one Δt under the load vector rhs (as produced by
// Analyzer.LoadedRHS for the post-transition memory state).
func (s *Sim) Step(rhs []float64) error {
	if len(rhs) != s.model.N() {
		return fmt.Errorf("transient: rhs length %d != %d nodes", len(rhs), s.model.N())
	}
	n := s.model.N()
	b := make([]float64, n)
	copy(b, rhs)
	for i := 0; i < n; i++ {
		if s.cap[i] > 0 {
			b[i] += s.cap[i] / s.cfg.Dt * s.v[i]
		}
	}
	for k, d := range s.cfg.Decaps {
		b[d.Node] += s.decapG[k] * s.vc[k]
	}
	// Inductive ties: the incoming rhs carries the DC tie source g·VDD;
	// swap it for the companion's source g'·(VDD + (L/dt)·iL).
	vdd := s.model.VDD
	for k, node := range s.indNode {
		b[node] += -s.indG0[k]*vdd + s.indG[k]*(vdd+s.indLdt[k]*s.iL[k])
	}
	v, _, err := solve.PCGWith(s.a, s.pre, b, solve.CGOptions{Tol: s.tol(), MaxIter: 20 * n})
	if err != nil {
		return err
	}
	// Update decap internal voltages from the branch currents.
	for k, d := range s.cfg.Decaps {
		i := s.decapG[k] * (v[d.Node] - s.vc[k])
		s.vc[k] += i * s.cfg.Dt / d.C
	}
	// Update inductor branch currents.
	for k, node := range s.indNode {
		s.iL[k] = s.indG[k] * (vdd - v[node] + s.indLdt[k]*s.iL[k])
	}
	s.v = v
	return nil
}

// Run steps the simulation for steps Δt under rhs and returns the worst
// DRAM IR drop after every step.
func (s *Sim) Run(rhs []float64, steps int) ([]float64, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("transient: steps %d must be positive", steps)
	}
	out := make([]float64, steps)
	for k := 0; k < steps; k++ {
		if err := s.Step(rhs); err != nil {
			return nil, err
		}
		out[k] = s.MaxIR()
	}
	return out, nil
}

// WireDecaps builds one decap branch behind every bond-wire tie of a
// wire-bonded design: the off-chip capacitors the paper says the wires can
// reach directly. cEach is the per-wire capacitance, rAccess the access
// resistance (ESR + trace).
func WireDecaps(model *rmesh.Model, cEach, rAccess float64) []Decap {
	var out []Decap
	for _, l := range model.Links {
		if l.Kind != rmesh.LinkWire {
			continue
		}
		out = append(out, Decap{Node: l.N1, C: cEach, R: rAccess + 1/l.G})
	}
	return out
}
