package transient

import (
	"math"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
	"pdn3d/internal/memstate"
)

func setup(t testing.TB, wirebond bool) (*irdrop.Analyzer, []float64, []float64) {
	t.Helper()
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Clone()
	spec.MeshPitch = 0.6
	spec.WireBond = wirebond
	a, err := irdrop.New(spec, b.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	idleState := memstate.State{Dies: make([][]int, 4)}
	idle, err := a.LoadedRHS(idleState, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	active, err := a.LoadedRHS(mustState(t), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return a, idle, active
}

func mustState(t testing.TB) memstate.State {
	t.Helper()
	s, err := memstate.FromCounts([]int{0, 0, 0, 2}, memstate.WorstCaseEdge(8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTransientConvergesToDC(t *testing.T) {
	a, idle, active := setup(t, false)
	sim, err := New(a.Model, DefaultConfig(), idle)
	if err != nil {
		t.Fatal(err)
	}
	// Long after the step, the transient must settle at the DC solution.
	curve, err := sim.Run(active, 400)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := a.Analyze(mustState(t), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	final := curve[len(curve)-1]
	if math.Abs(final-dc.MaxIR) > dc.MaxIR*0.02 {
		t.Errorf("settled droop %.3f mV, DC %.3f mV", final*1000, dc.MaxIR*1000)
	}
	// Monotone rise: an RC network stepped to a larger load cannot
	// overshoot (no inductance).
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-6 {
			t.Fatalf("droop fell at step %d: %.4f -> %.4f mV", i, curve[i-1]*1000, curve[i]*1000)
		}
	}
	if curve[len(curve)-1] > dc.MaxIR*1.02 {
		t.Error("droop overshot the DC value in an RC-only network")
	}
}

func TestOnDieCapSlowsDroop(t *testing.T) {
	a, idle, active := setup(t, false)
	fast := DefaultConfig()
	fast.DieCapFPerMM2 = 0.2e-9
	slow := DefaultConfig()
	slow.DieCapFPerMM2 = 8e-9
	simF, err := New(a.Model, fast, idle)
	if err != nil {
		t.Fatal(err)
	}
	simS, err := New(a.Model, slow, idle)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := simF.Run(active, 8)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := simS.Run(active, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cs[3] >= cf[3] {
		t.Errorf("40x on-die cap should slow the droop: %.3f vs %.3f mV after 4 steps",
			cs[3]*1000, cf[3]*1000)
	}
}

func TestWireDecapsReduceEarlyDroop(t *testing.T) {
	// Wire-bonded design with off-chip decaps vs the same design without:
	// the early droop of a short activation burst shrinks (the paper's AC
	// claim); the DC endpoint is unchanged by the capacitors.
	a, idle, active := setup(t, true)
	cfgNo := DefaultConfig()
	simNo, err := New(a.Model, cfgNo, idle)
	if err != nil {
		t.Fatal(err)
	}
	cfgDecap := DefaultConfig()
	cfgDecap.Decaps = WireDecaps(a.Model, 100e-9, 0.05) // 100 nF behind each wire
	if len(cfgDecap.Decaps) == 0 {
		t.Fatal("wire-bonded model produced no wire decap sites")
	}
	simDe, err := New(a.Model, cfgDecap, idle)
	if err != nil {
		t.Fatal(err)
	}
	cNo, err := simNo.Run(active, 40)
	if err != nil {
		t.Fatal(err)
	}
	cDe, err := simDe.Run(active, 40)
	if err != nil {
		t.Fatal(err)
	}
	if cDe[10] >= cNo[10] {
		t.Errorf("decaps should reduce the early droop: %.3f vs %.3f mV",
			cDe[10]*1000, cNo[10]*1000)
	}
}

func TestNewValidation(t *testing.T) {
	a, idle, _ := setup(t, false)
	bad := DefaultConfig()
	bad.Dt = 0
	if _, err := New(a.Model, bad, idle); err == nil {
		t.Error("zero dt: want error")
	}
	cfg := DefaultConfig()
	if _, err := New(a.Model, cfg, idle[:3]); err == nil {
		t.Error("short rhs: want error")
	}
	cfg.Decaps = []Decap{{Node: -1, C: 1e-9}}
	if _, err := New(a.Model, cfg, idle); err == nil {
		t.Error("bad decap node: want error")
	}
	cfg.Decaps = []Decap{{Node: 0, C: 0}}
	if _, err := New(a.Model, cfg, idle); err == nil {
		t.Error("zero decap C: want error")
	}
	sim, err := New(a.Model, DefaultConfig(), idle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(idle, 0); err == nil {
		t.Error("zero steps: want error")
	}
	if err := sim.Step(idle[:2]); err == nil {
		t.Error("short step rhs: want error")
	}
}

func TestInitialStateIsIdleDC(t *testing.T) {
	a, idle, _ := setup(t, false)
	sim, err := New(a.Model, DefaultConfig(), idle)
	if err != nil {
		t.Fatal(err)
	}
	// MaxIR before any step equals the idle DC drop.
	idleState := memstate.State{Dies: make([][]int, 4)}
	dc, err := a.Analyze(idleState, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim.MaxIR()-dc.MaxIR) > 1e-6 {
		t.Errorf("initial droop %.4f mV, idle DC %.4f mV", sim.MaxIR()*1000, dc.MaxIR*1000)
	}
}
