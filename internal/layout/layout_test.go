package layout

import (
	"strings"
	"testing"

	"pdn3d/internal/bench3d"
	"pdn3d/internal/irdrop"
)

func TestWriteSVGBasics(t *testing.T) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = WriteSVG(&sb, b.Spec, b.Spec.DRAM, Options{Title: "ddr3", ShowTSVs: true})
	if err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<circle") != b.Spec.TSVCount {
		t.Errorf("TSV circles = %d, want %d", strings.Count(svg, "<circle"), b.Spec.TSVCount)
	}
	// One rect per block plus the outline.
	wantRects := len(b.Spec.DRAM.Blocks) + 1
	if got := strings.Count(svg, "<rect"); got != wantRects {
		t.Errorf("rects = %d, want %d", got, wantRects)
	}
	if !strings.Contains(svg, "bank7.array") {
		t.Error("block titles missing")
	}
}

func TestWriteSVGWithIROverlay(t *testing.T) {
	b, err := bench3d.StackedDDR3Off()
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Clone()
	spec.MeshPitch = 0.5
	a, err := irdrop.New(spec, b.DRAMPower, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.AnalyzeCounts([]int{0, 0, 0, 2}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := a.Model.Layer("dram3/M2")
	if !ok {
		t.Fatal("layer missing")
	}
	var sb strings.Builder
	if err := WriteSVG(&sb, spec, spec.DRAM, Options{IR: res.IR, Layer: l}); err != nil {
		t.Fatal(err)
	}
	svg := sb.String()
	if !strings.Contains(svg, "max IR") {
		t.Error("heat caption missing")
	}
	if strings.Count(svg, "fill-opacity") < 10 {
		t.Error("expected a populated heat overlay")
	}
	lo, hi := HeatRange(res.IR, l)
	if lo < 0 || hi <= lo {
		t.Errorf("heat range [%g, %g] inconsistent", lo, hi)
	}
}

func TestWriteSVGErrors(t *testing.T) {
	b, _ := bench3d.StackedDDR3Off()
	var sb strings.Builder
	if err := WriteSVG(&sb, b.Spec, nil, Options{}); err == nil {
		t.Error("nil floorplan: want error")
	}
	if err := WriteSVG(&sb, b.Spec, b.Spec.DRAM, Options{IR: []float64{1}}); err == nil {
		t.Error("IR without layer: want error")
	}
}

func TestWriteSVGWireBondPads(t *testing.T) {
	b, _ := bench3d.StackedDDR3Off()
	spec := b.Spec.Clone()
	spec.WireBond = true
	var sb strings.Builder
	if err := WriteSVG(&sb, spec, spec.DRAM, Options{ShowWires: true}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "purple"); got != spec.EffWiresPerDie() {
		t.Errorf("wire pads = %d, want %d", got, spec.EffWiresPerDie())
	}
}
