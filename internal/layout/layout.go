// Package layout renders auto-generated floorplans and PDN placements as
// SVG — the analogue of the paper's Figure 3 layout views. A drawing shows
// the die outline, the floorplan blocks colored by kind, the PG TSV /
// landing / bond-wire sites, and optionally an IR-drop heat overlay from an
// analysis result.
package layout

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/pdn"
	"pdn3d/internal/rmesh"
)

// pxPerMM is the drawing scale.
const pxPerMM = 60.0

// blockFill maps block kinds to fill colors.
func blockFill(k floorplan.BlockKind) string {
	switch k {
	case floorplan.BankArray:
		return "#9ecae1"
	case floorplan.RowDecoder:
		return "#6baed6"
	case floorplan.ColumnPath:
		return "#c6dbef"
	case floorplan.Peripheral:
		return "#fdd0a2"
	case floorplan.TSVRegion:
		return "#e5e5e5"
	case floorplan.Core:
		return "#fcae91"
	case floorplan.Cache:
		return "#cbc9e2"
	case floorplan.Uncore:
		return "#bae4b3"
	default:
		return "#dddddd"
	}
}

// Options selects what a drawing includes.
type Options struct {
	// Title is drawn above the die.
	Title string
	// ShowTSVs draws the PG TSV sites.
	ShowTSVs bool
	// ShowWires draws the bond-wire pads.
	ShowWires bool
	// IR optionally overlays an IR-drop heat map of one mesh layer.
	IR []float64
	// Layer selects the overlay layer (required with IR).
	Layer *rmesh.Layer
}

// WriteSVG renders one die of the design to SVG.
func WriteSVG(w io.Writer, spec *pdn.Spec, fp *floorplan.Floorplan, opt Options) error {
	if fp == nil {
		return fmt.Errorf("layout: nil floorplan")
	}
	if opt.IR != nil && opt.Layer == nil {
		return fmt.Errorf("layout: IR overlay needs a layer")
	}
	bw := bufio.NewWriter(w)
	o := fp.Outline
	width := o.W()*pxPerMM + 20
	height := o.H()*pxPerMM + 40
	// SVG y grows downward; flip so the floorplan's y grows upward.
	fy := func(y float64) float64 { return (o.Y1-y)*pxPerMM + 30 }
	fx := func(x float64) float64 { return (x-o.X0)*pxPerMM + 10 }

	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	if opt.Title != "" {
		fmt.Fprintf(bw, `<text x="10" y="20" font-family="monospace" font-size="14">%s</text>`+"\n", opt.Title)
	}
	// Die outline.
	fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#fafafa" stroke="black" stroke-width="1.5"/>`+"\n",
		fx(o.X0), fy(o.Y1), o.W()*pxPerMM, o.H()*pxPerMM)
	// Blocks.
	for _, bl := range fp.Blocks {
		r := bl.Rect
		fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#666" stroke-width="0.5"><title>%s</title></rect>`+"\n",
			fx(r.X0), fy(r.Y1), r.W()*pxPerMM, r.H()*pxPerMM, blockFill(bl.Kind), bl.Name)
	}
	// IR heat overlay: semi-transparent red cells scaled by drop.
	if opt.IR != nil {
		l := opt.Layer
		var mx float64
		for n := l.Offset; n < l.Offset+l.Grid.N(); n++ {
			if opt.IR[n] > mx {
				mx = opt.IR[n]
			}
		}
		if mx > 0 {
			cw := l.Grid.StepX() * pxPerMM
			ch := l.Grid.StepY() * pxPerMM
			for j := 0; j < l.Grid.NY; j++ {
				for i := 0; i < l.Grid.NX; i++ {
					v := opt.IR[l.Offset+l.Grid.Index(i, j)] / mx
					if v < 0.05 {
						continue
					}
					p := l.Grid.Pos(i, j)
					fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(255,%d,%d)" fill-opacity="%.2f"/>`+"\n",
						fx(p.X)-cw/2, fy(p.Y)-ch/2, cw, ch,
						int(220*(1-v)), int(180*(1-v)), 0.25+0.55*v)
				}
			}
			fmt.Fprintf(bw, `<text x="10" y="%.0f" font-family="monospace" font-size="12">max IR %.2f mV (%s)</text>`+"\n",
				height-6, mx*1000, l.Key)
		}
	}
	// TSV sites.
	if opt.ShowTSVs {
		for _, p := range spec.TSVSites() {
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="black"/>`+"\n", fx(p.X), fy(p.Y))
		}
	}
	// Bond-wire pads.
	if opt.ShowWires && spec.WireBond {
		for _, p := range spec.WireSites() {
			fmt.Fprintf(bw, `<rect x="%.1f" y="%.1f" width="6" height="6" fill="none" stroke="purple" stroke-width="1.2"/>`+"\n",
				fx(p.X)-3, fy(p.Y)-3)
		}
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// HeatRange returns the (min, max) IR drop over a layer, for captions.
func HeatRange(ir []float64, l *rmesh.Layer) (lo, hi float64) {
	lo = math.Inf(1)
	for n := l.Offset; n < l.Offset+l.Grid.N(); n++ {
		v := ir[n]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
