package par

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"

	"pdn3d/internal/obs"
)

func TestSweepCtxRecordsItemSpans(t *testing.T) {
	tr := obs.NewTrace("")
	root := tr.Span("request")
	ctx := obs.WithSpan(context.Background(), root)
	var mu sync.Mutex
	got := map[int]bool{}
	err := SweepCtx(ctx, 4, 6, nil, "item", func(ctx context.Context, i int) error {
		sp := obs.SpanFrom(ctx)
		if sp == nil {
			t.Errorf("task %d saw no span in its context", i)
			return nil
		}
		// Children opened inside the task nest under its item span.
		c := sp.Child("inner")
		c.End()
		mu.Lock()
		got[i] = true
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if len(got) != 6 {
		t.Fatalf("ran %d tasks, want 6", len(got))
	}

	snap := tr.Snapshot()
	rootID := 0
	var items []string
	inner := 0
	byID := map[int]obs.TraceSpanSnapshot{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "request":
			rootID = sp.ID
		case "item":
			items = append(items, sp.Attrs["item"])
		case "inner":
			if byID[sp.Parent].Name != "item" {
				t.Fatalf("inner span parent is %q, want item", byID[sp.Parent].Name)
			}
			inner++
		}
	}
	for _, sp := range snap.Spans {
		if sp.Name == "item" && sp.Parent != rootID {
			t.Fatalf("item span parent = %d, want request span %d", sp.Parent, rootID)
		}
	}
	sort.Strings(items)
	want := []string{"0", "1", "2", "3", "4", "5"}
	for i := range want {
		if i >= len(items) || items[i] != want[i] {
			t.Fatalf("item attrs = %v, want %v", items, want)
		}
	}
	if inner != 6 {
		t.Fatalf("recorded %d inner spans, want 6", inner)
	}
}

func TestSweepCtxWithoutSpanIsPlainSweep(t *testing.T) {
	var mu sync.Mutex
	n := 0
	err := SweepCtx(context.Background(), 2, 5, nil, "item", func(ctx context.Context, i int) error {
		if obs.SpanFrom(ctx) != nil {
			t.Errorf("untraced sweep leaked a span into task %d", i)
		}
		mu.Lock()
		n++
		mu.Unlock()
		return nil
	})
	if err != nil || n != 5 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}

func TestSweepCtxPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := SweepCtx(context.Background(), 2, 5, nil, "item", func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
