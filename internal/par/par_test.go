package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSweepVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		var hits = make([]atomic.Int64, n)
		if err := Sweep(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestSweepReturnsLowestIndexedError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	err := Sweep(4, 50, func(i int) error {
		switch i {
		case 7:
			return errA
		case 30:
			return errB
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-indexed failure", err)
	}
}

func TestSweepCancelsAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	err := Sweep(2, 10000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n == 10000 {
		t.Error("sweep ran every index despite an early error")
	}
}

func TestSweepZeroAndNegativeN(t *testing.T) {
	if err := Sweep(4, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
	if err := Sweep(4, -3, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestBlocksCoverExactly(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, n := range []int{1, 7, 64, 100} {
			covered := make([]atomic.Int64, n)
			Blocks(workers, n, 16, func(b, lo, hi int) {
				if lo != b*16 {
					t.Errorf("block %d starts at %d", b, lo)
				}
				for i := lo; i < hi; i++ {
					covered[i].Add(1)
				}
			})
			for i := range covered {
				if covered[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, covered[i].Load())
				}
			}
		}
	}
}

// Block partitioning must not depend on the worker count: a block-indexed
// reduction combined in block order is then deterministic.
func TestBlocksDeterministicPartition(t *testing.T) {
	n, block := 1000, 64
	shape := func(workers int) string {
		var mu sync.Mutex
		spans := map[int]string{}
		Blocks(workers, n, block, func(b, lo, hi int) {
			mu.Lock()
			spans[b] = fmt.Sprintf("%d:%d", lo, hi)
			mu.Unlock()
		})
		out := ""
		for b := 0; b < (n+block-1)/block; b++ {
			out += spans[b] + ","
		}
		return out
	}
	if shape(1) != shape(8) {
		t.Error("partitioning depends on worker count")
	}
}

func TestGroupExactlyOncePerKey(t *testing.T) {
	var g Group[int]
	var calls [8]atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 64; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			k := r % len(calls)
			v, err := g.Do(fmt.Sprintf("k%d", k), func() (int, error) {
				calls[k].Add(1)
				return 100 + k, nil
			})
			if err != nil || v != 100+k {
				t.Errorf("Do(k%d) = %d, %v", k, v, err)
			}
		}(r)
	}
	wg.Wait()
	for k := range calls {
		if n := calls[k].Load(); n != 1 {
			t.Errorf("key k%d built %d times, want exactly once", k, n)
		}
	}
	if g.Len() != len(calls) {
		t.Errorf("Len = %d, want %d", g.Len(), len(calls))
	}
}

func TestGroupDoesNotCacheErrors(t *testing.T) {
	var g Group[int]
	n := 0
	if _, err := g.Do("k", func() (int, error) { n++; return 0, errors.New("x") }); err == nil {
		t.Fatal("want error")
	}
	v, err := g.Do("k", func() (int, error) { n++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry: %d, %v", v, err)
	}
	if n != 2 {
		t.Fatalf("fn ran %d times, want 2 (error not cached)", n)
	}
	if v, ok := g.Cached("k"); !ok || v != 7 {
		t.Fatalf("Cached = %d, %v", v, ok)
	}
}

func TestGroupForget(t *testing.T) {
	var g Group[int]
	runs := 0
	fn := func() (int, error) { runs++; return runs, nil }
	if v, _ := g.Do("k", fn); v != 1 {
		t.Fatalf("first Do = %d", v)
	}
	if v, _ := g.Do("k", fn); v != 1 {
		t.Fatalf("cached Do = %d, want 1", v)
	}
	g.Forget("k")
	if _, ok := g.Cached("k"); ok {
		t.Fatal("Forget left the key cached")
	}
	if v, _ := g.Do("k", fn); v != 2 {
		t.Fatalf("Do after Forget = %d, want 2 (fn re-run)", v)
	}
	g.Forget("never-stored") // no-op, must not panic
	if g.Len() != 1 {
		t.Fatalf("Len = %d, want 1", g.Len())
	}
}
