// Package par provides the small concurrency primitives shared by the
// analysis stack: a bounded worker-pool sweep with first-error
// cancellation (design-space fan-out), deterministic block partitioning
// (kernel sharding), and a singleflight-style call deduplicator (analyzer
// and LUT caches).
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"pdn3d/internal/obs"
)

// Workers resolves a worker-count knob: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Sweep runs fn(i) for every i in [0, n) on at most workers goroutines
// (<= 0 selects GOMAXPROCS) and returns the error of the lowest-indexed
// failing call. After the first failure no new indices are started, so a
// sweep over independent design points cancels promptly; calls already in
// flight run to completion.
func Sweep(workers, n int, fn func(i int) error) error {
	return SweepWith(workers, n, nil, fn)
}

// SweepWith is Sweep with per-task instrumentation: task start/completion
// counts, queue wait, busy time, and worker utilization are recorded on m
// (nil disables instrumentation). Task counts are deterministic for
// error-free sweeps; after a failure the number of started tasks depends
// on cancellation timing.
func SweepWith(workers, n int, m *obs.SweepMetrics, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	run := m.Begin(workers)
	defer run.End()
	call := func(i int) error {
		defer run.TaskStart()()
		return fn(i)
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		mu      sync.Mutex
		errIdx  = n
		firstBy error
		wg      sync.WaitGroup
	)
	worker := func() {
		defer wg.Done()
		for !stopped.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := call(i); err != nil {
				mu.Lock()
				if i < errIdx {
					errIdx, firstBy = i, err
				}
				mu.Unlock()
				stopped.Store(true)
				return
			}
		}
	}
	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go worker()
	}
	worker() // the caller participates, bounding the pool at `workers`
	wg.Wait()
	return firstBy
}

// SweepCtx is SweepWith for context-aware tasks under a request trace:
// each task runs with a child span of ctx's active span (named name,
// annotated with its item index) installed in its context, so fan-out
// work nests under the request that spawned it. With no active span in
// ctx the per-task spans are nil and the sweep behaves exactly like
// SweepWith — tracing is pay-as-you-go.
func SweepCtx(ctx context.Context, workers, n int, m *obs.SweepMetrics, name string, fn func(ctx context.Context, i int) error) error {
	parent := obs.SpanFrom(ctx)
	return SweepWith(workers, n, m, func(i int) error {
		sp := parent.Child(name, obs.A("item", i))
		defer sp.End()
		return fn(obs.WithSpan(ctx, sp), i)
	})
}

// Blocks partitions [0, n) into fixed-size blocks and runs fn(b, lo, hi)
// for block b over every range, on at most workers goroutines. The
// partitioning depends only on n and block — never on workers — so
// block-indexed reductions (partial sums gathered per block and combined
// in block order) are bit-for-bit deterministic for any worker count.
func Blocks(workers, n, block int, fn func(b, lo, hi int)) {
	if n <= 0 {
		return
	}
	if block <= 0 {
		block = n
	}
	nb := (n + block - 1) / block
	run := func(b int) {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	}
	workers = Workers(workers)
	if workers > nb {
		workers = nb
	}
	if workers == 1 {
		for b := 0; b < nb; b++ {
			run(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		for {
			b := int(next.Add(1)) - 1
			if b >= nb {
				return
			}
			run(b)
		}
	}
	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go worker()
	}
	worker()
	wg.Wait()
}

// Group deduplicates concurrent calls by key, singleflight-style: the
// first caller for a key runs fn, every caller arriving while that call is
// in flight waits for and shares its outcome, and successful results are
// cached for all later callers. A failed call is not cached, so the next
// caller retries. The zero value is ready to use.
//
// Hits/Misses, when set, count calls served without executing fn (cache
// hit or shared in-flight result) versus fn executions. For error-free
// workloads both are functions of the call multiset alone, independent of
// worker count; failed calls retry, so error paths may add misses.
type Group[V any] struct {
	mu       sync.Mutex
	done     map[string]V
	inflight map[string]*flight[V]

	Hits, Misses *obs.Counter
}

type flight[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do returns the cached value for key, or runs fn to produce it. Among
// concurrent callers for one key, exactly one executes fn.
func (g *Group[V]) Do(key string, fn func() (V, error)) (V, error) {
	g.mu.Lock()
	if v, ok := g.done[key]; ok {
		g.mu.Unlock()
		g.Hits.Add(1)
		return v, nil
	}
	if f, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		g.Hits.Add(1)
		f.wg.Wait()
		return f.val, f.err
	}
	if g.inflight == nil {
		g.inflight = map[string]*flight[V]{}
	}
	f := &flight[V]{}
	f.wg.Add(1)
	g.inflight[key] = f
	g.mu.Unlock()
	g.Misses.Add(1)

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	if f.err == nil {
		if g.done == nil {
			g.done = map[string]V{}
		}
		g.done[key] = f.val
	}
	g.mu.Unlock()
	f.wg.Done()
	return f.val, f.err
}

// Forget drops the completed value for key, so the next Do runs fn again.
// An in-flight call for the key is unaffected: it still completes and
// caches its own result. Layering a bounded cache on top of a Group —
// check the cache, Do on miss, then move the value into the cache and
// Forget — keeps the Group holding only in-flight work while the external
// cache enforces the size bound.
func (g *Group[V]) Forget(key string) {
	g.mu.Lock()
	delete(g.done, key)
	g.mu.Unlock()
}

// Reset drops every completed value, so each key's next Do runs fn again.
// In-flight calls are unaffected (they complete and cache their own
// results). Callers that invalidate the inputs a Group's values were
// derived from — e.g. restamping the matrix a solver cache factorized —
// use Reset to flush the stale values in one step.
func (g *Group[V]) Reset() {
	g.mu.Lock()
	g.done = nil
	g.mu.Unlock()
}

// Cached returns the completed value for key, if any.
func (g *Group[V]) Cached(key string) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.done[key]
	return v, ok
}

// Len reports the number of completed (cached) keys.
func (g *Group[V]) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.done)
}
