package irdrop

import (
	"context"
	"sync"
	"testing"

	"pdn3d/internal/powermap"
)

// TestCancelledWarmSolveDoesNotPublish is the warm-start poisoning
// regression: a warm-started AnalyzeCtx whose context is cancelled must
// not publish anything into the WarmStart cell. If it did, the partially
// converged iterate (or the seed itself) would become the X0 of every
// subsequent solve — a silent accuracy leak that no per-solve tolerance
// check would catch, because later solves still converge, just from a
// corrupted starting point that was never a completed solution.
func TestCancelledWarmSolveDoesNotPublish(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Warm = &WarmStart{}
	// Prime the cell with one completed solve.
	if _, err := a.AnalyzeCounts([]int{1, 0, 0, 0}, 1.0); err != nil {
		t.Fatal(err)
	}
	seed0 := a.Warm.Seed(a.Model.N())
	if seed0 == nil {
		t.Fatal("priming solve did not publish a warm seed")
	}
	// A different state so the primed seed cannot satisfy the solver's
	// initial-residual early return (which would be a legitimate publish).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnalyzeCtx(ctx, state(t, 0, 0, 0, 2), 1.0); err == nil {
		t.Fatal("analyze with a cancelled context succeeded")
	}
	seed1 := a.Warm.Seed(a.Model.N())
	if seed1 == nil {
		t.Fatal("warm seed vanished after a cancelled solve")
	}
	if &seed1[0] != &seed0[0] {
		t.Error("cancelled warm-started solve published into the warm-start cell")
	}
}

// TestCancelledWarmSolvesConcurrent hammers the cell with concurrent
// cancelled warm-started solves (run under -race in CI): none may
// publish, so the cell must still hold the exact primed solution at the
// end, and the reads/writes must be race-clean.
func TestCancelledWarmSolvesConcurrent(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a.Warm = &WarmStart{}
	if _, err := a.AnalyzeCounts([]int{1, 0, 0, 0}, 1.0); err != nil {
		t.Fatal(err)
	}
	seed0 := a.Warm.Seed(a.Model.N())
	if seed0 == nil {
		t.Fatal("priming solve did not publish a warm seed")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	states := [][]int{{0, 0, 0, 2}, {0, 2, 0, 0}, {1, 1, 1, 1}, {2, 0, 0, 0}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				st := state(t, states[(g+i)%len(states)]...)
				if _, err := a.AnalyzeCtx(ctx, st, 1.0); err == nil {
					t.Error("cancelled analyze succeeded")
				}
			}
		}(g)
	}
	wg.Wait()
	seed1 := a.Warm.Seed(a.Model.N())
	if seed1 == nil || &seed1[0] != &seed0[0] {
		t.Error("a cancelled solve published into the warm-start cell")
	}
}
