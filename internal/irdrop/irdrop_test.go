package irdrop

import (
	"context"
	"errors"
	"math"
	"testing"

	"pdn3d/internal/floorplan"
	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/tech"
)

func coarseSpec(t testing.TB) *pdn.Spec {
	t.Helper()
	fp, err := floorplan.DDR3Die(floorplan.DefaultDDR3())
	if err != nil {
		t.Fatal(err)
	}
	return &pdn.Spec{
		Name:      "test",
		NumDRAM:   4,
		DRAM:      fp,
		DRAMTech:  tech.DRAM20(1.5),
		Usage:     map[string]float64{"M2": 0.10, "M3": 0.20},
		Bonding:   pdn.F2B,
		TSVStyle:  pdn.EdgeTSV,
		TSVCount:  33,
		MeshPitch: 0.5,
	}
}

func state(t testing.TB, counts ...int) memstate.State {
	t.Helper()
	s, err := memstate.FromCounts(counts, memstate.WorstCaseEdge(8))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAnalyzeBasics(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Analyze(state(t, 0, 0, 0, 2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxIR <= 0 {
		t.Fatal("max IR must be positive")
	}
	if len(r.PerDie) != 4 {
		t.Fatalf("PerDie has %d entries", len(r.PerDie))
	}
	var worst float64
	for _, v := range r.PerDie {
		if v > worst {
			worst = v
		}
	}
	if math.Abs(worst-r.MaxIR) > 1e-15 {
		t.Error("MaxIR must equal the per-die maximum")
	}
	if math.Abs(r.TotalPower-310.5) > 3.5 {
		t.Errorf("stack power %.1f, want ~310.5 mW", r.TotalPower)
	}
	if !r.Stats.Converged {
		t.Error("solver did not converge")
	}
	if len(r.IR) != a.Model.N() {
		t.Error("IR vector length mismatch")
	}
}

func TestAnalyzeCaching(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := a.Analyze(state(t, 0, 0, 0, 2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Analyze(state(t, 0, 0, 0, 2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("identical queries must hit the cache (same pointer)")
	}
	r3, err := a.Analyze(state(t, 0, 0, 0, 2), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Error("different IO must not hit the cache")
	}
}

func TestAnalyzeRejectsBadState(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Analyze(memstate.State{Dies: make([][]int, 9)}, 1.0); err == nil {
		t.Error("too many dies: want error")
	}
}

func TestNewRejectsLogicPowerOffChip(t *testing.T) {
	if _, err := New(coarseSpec(t), powermap.StackedDDR3Power(), powermap.T2Power(1000)); err == nil {
		t.Error("logic power on an off-chip design: want error")
	}
}

func TestLoadedRHSMatchesAnalyze(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := state(t, 0, 0, 0, 2)
	rhs, err := a.LoadedRHS(st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rhs) != a.Model.N() {
		t.Fatal("rhs length mismatch")
	}
	// Net injected current must equal tie current minus load current:
	// sum(rhs) = G_tie*VDD - P/VDD (in amps).
	var sum float64
	for _, v := range rhs {
		sum += v
	}
	base := a.Model.BaseRHS()
	var baseSum float64
	for _, v := range base {
		baseSum += v
	}
	r, err := a.Analyze(st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	wantLoad := r.TotalPower / 1000 / a.Model.VDD
	if math.Abs((baseSum-sum)-wantLoad) > 1e-9 {
		t.Errorf("rhs load component %.6f A, want %.6f A", baseSum-sum, wantLoad)
	}
}

func TestValidateRefinementAgreement(t *testing.T) {
	spec := coarseSpec(t)
	v, err := Validate(spec, powermap.StackedDDR3Power(), nil, state(t, 0, 0, 0, 2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if v.FineNodes <= v.CoarseNodes {
		t.Error("reference mesh must be finer")
	}
	if v.ErrPct > 15 {
		t.Errorf("refinement error %.1f%% implausibly large", v.ErrPct)
	}
	if v.CoarseIR <= 0 || v.FineIR <= 0 {
		t.Error("IR drops must be positive")
	}
}

func TestCrossCheckDenseAgreement(t *testing.T) {
	spec := coarseSpec(t)
	spec.NumDRAM = 1
	spec.MeshPitch = 0.8
	worst, err := CrossCheckDense(spec, powermap.StackedDDR3Power(), memstate.State{Dies: [][]int{{7, 5}}}, 1.0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-7 {
		t.Errorf("CG vs dense Cholesky disagree by %.3e V", worst)
	}
}

func TestCrossCheckDenseSizeCap(t *testing.T) {
	spec := coarseSpec(t)
	if _, err := CrossCheckDense(spec, powermap.StackedDDR3Power(), state(t, 0, 0, 0, 2), 1.0, 10); err == nil {
		t.Error("oversized mesh: want error")
	}
}

func TestSingleDie2D(t *testing.T) {
	spec := coarseSpec(t)
	spec.OnLogic = false
	d2 := SingleDie2D(spec)
	if d2.NumDRAM != 1 || d2.OnLogic || d2.WireBond {
		t.Errorf("2D derivation wrong: %+v", d2)
	}
	if err := d2.Validate(); err != nil {
		t.Errorf("2D spec invalid: %v", err)
	}
	// Single die, single bank read: the paper's 2D DDR3 shows ~22.5 mV;
	// ours should be in the same band at full pitch, looser here (coarse).
	a, err := New(d2, powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Analyze(memstate.State{Dies: [][]int{{4, 6}}}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxIRmV() < 10 || r.MaxIRmV() > 45 {
		t.Errorf("2D DDR3 interleaving read = %.2f mV, expected tens of mV", r.MaxIRmV())
	}
}

func TestCrowdingStats(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.Analyze(state(t, 0, 0, 0, 2), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := a.Crowding(r)
	if err != nil {
		t.Fatal(err)
	}
	var tsv, landing bool
	var totalLanding float64
	for _, s := range stats {
		if s.Count <= 0 || s.MaxMA < s.MeanMA || s.Crowding < 1 {
			t.Errorf("%s: inconsistent stats %+v", s.Kind, s)
		}
		if s.P95MA > s.MaxMA {
			t.Errorf("%s: P95 %.3f above max %.3f", s.Kind, s.P95MA, s.MaxMA)
		}
		switch s.Kind {
		case rmesh.LinkTSV:
			tsv = true
		case rmesh.LinkLanding:
			landing = true
			totalLanding = s.TotalMA
		}
	}
	if !tsv || !landing {
		t.Fatalf("expected TSV and landing stats, got %+v", stats)
	}
	// All supply current enters through the landings: total landing
	// current equals stack power / VDD.
	wantMA := r.TotalPower / a.Model.VDD
	if math.Abs(totalLanding-wantMA) > wantMA*0.01 {
		t.Errorf("landing current %.1f mA, want %.1f mA", totalLanding, wantMA)
	}
}

func TestCrowdingWorseWithFewEdgeTSVs(t *testing.T) {
	few := coarseSpec(t)
	few.TSVCount = 8
	many := coarseSpec(t)
	many.TSVCount = 128
	get := func(spec *pdn.Spec) float64 {
		a, err := New(spec, powermap.StackedDDR3Power(), nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.Analyze(state(t, 0, 0, 0, 2), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := a.Crowding(r)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range stats {
			if s.Kind == rmesh.LinkTSV {
				return s.MaxMA
			}
		}
		t.Fatal("no TSV stats")
		return 0
	}
	if fewMax, manyMax := get(few), get(many); fewMax <= manyMax {
		t.Errorf("peak TSV current with 8 TSVs (%.2f mA) should exceed 128 TSVs (%.2f mA)", fewMax, manyMax)
	}
}

// AnalyzeCtx: a canceled context aborts mid-solve; a live context produces
// results identical to Analyze without sharing its memo (fresh pointers).
func TestAnalyzeCtx(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	st := state(t, 0, 0, 0, 2)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnalyzeCtx(canceled, st, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx on canceled ctx = %v, want context.Canceled", err)
	}

	fresh, err := a.AnalyzeCtx(context.Background(), st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := a.Analyze(st, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == memo {
		t.Error("AnalyzeCtx must not share the memoized result")
	}
	if fresh.MaxIR != memo.MaxIR || fresh.TotalPower != memo.TotalPower {
		t.Errorf("AnalyzeCtx result differs: MaxIR %g vs %g", fresh.MaxIR, memo.MaxIR)
	}
	for d := range fresh.PerDie {
		if fresh.PerDie[d] != memo.PerDie[d] {
			t.Errorf("PerDie[%d] = %g vs %g", d, fresh.PerDie[d], memo.PerDie[d])
		}
	}
}
