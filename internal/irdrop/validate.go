package irdrop

import (
	"fmt"
	"math"
	"time"

	"pdn3d/internal/memstate"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/solve"
)

// Validation compares the production R-Mesh against a golden reference, in
// the spirit of the paper's Figure 4 (R-Mesh vs. Cadence EPS): the
// reference uses a 2x-refined mesh — playing the role of EPS's
// extraction-level spatial resolution — solved to tight tolerance.
type Validation struct {
	// CoarseIR / FineIR are the max IR drops (V) of the two models.
	CoarseIR, FineIR float64
	// ErrPct is the relative max-IR error of the coarse model in percent.
	ErrPct float64
	// CoarseTime / FineTime are wall-clock solve+build times.
	CoarseTime, FineTime time.Duration
	// Speedup is FineTime / CoarseTime.
	Speedup float64
	// CoarseNodes / FineNodes are the model sizes.
	CoarseNodes, FineNodes int
}

// Validate runs the production model and the refined-mesh reference on the
// same design, state and activity, and reports accuracy and speedup.
func Validate(spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel,
	state memstate.State, io float64) (*Validation, error) {

	run := func(s *pdn.Spec) (float64, time.Duration, int, error) {
		//pdnlint:ignore walltime the validation harness measures speedup on purpose; timing is reported beside accuracy, never folded into results
		start := time.Now()
		a, err := New(s, dramPower, logicPower)
		if err != nil {
			return 0, 0, 0, err
		}
		r, err := a.Analyze(state, io)
		if err != nil {
			return 0, 0, 0, err
		}
		return r.MaxIR, time.Since(start), a.Model.N(), nil
	}

	coarseIR, coarseT, coarseN, err := run(spec)
	if err != nil {
		return nil, fmt.Errorf("irdrop: coarse model: %w", err)
	}
	fine := spec.Clone()
	fine.Name = spec.Name + "/ref"
	fine.MeshPitch = spec.EffMeshPitch() / 2
	fineIR, fineT, fineN, err := run(fine)
	if err != nil {
		return nil, fmt.Errorf("irdrop: reference model: %w", err)
	}

	v := &Validation{
		CoarseIR: coarseIR, FineIR: fineIR,
		CoarseTime: coarseT, FineTime: fineT,
		CoarseNodes: coarseN, FineNodes: fineN,
	}
	if fineIR != 0 {
		v.ErrPct = math.Abs(coarseIR-fineIR) / fineIR * 100
	}
	if coarseT > 0 {
		v.Speedup = float64(fineT) / float64(coarseT)
	}
	return v, nil
}

// CrossCheckDense solves the design's nodal system with every registered
// solver method and compares each against an exact dense Cholesky
// factorization, returning the maximum absolute voltage disagreement in
// volts across all of them. It guards the solver registry itself and is
// restricted to small meshes (the dense path is O(n³)).
func CrossCheckDense(spec *pdn.Spec, dramPower *powermap.DRAMModel,
	state memstate.State, io float64, maxNodes int) (float64, error) {

	a, err := New(spec, dramPower, nil)
	if err != nil {
		return 0, err
	}
	if a.Model.N() > maxNodes {
		return 0, fmt.Errorf("irdrop: mesh has %d nodes, dense cross-check capped at %d", a.Model.N(), maxNodes)
	}
	m := a.Model
	rhs := m.BaseRHS()
	for d := 0; d < spec.NumDRAM; d++ {
		var banks []int
		if d < len(state.Dies) {
			banks = state.Dies[d]
		}
		loads, err := dramPower.Loads(spec.DRAM, banks, io)
		if err != nil {
			return 0, err
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			return 0, err
		}
	}
	vExact, err := solve.DenseSolve(m.Matrix, rhs)
	if err != nil {
		return 0, err
	}
	var worst float64
	for _, method := range solve.Methods() {
		v, _, err := m.Solve(rhs, solve.Options{
			Method:    method,
			CGOptions: solve.CGOptions{Tol: 1e-12, MaxIter: 100000},
		})
		if err != nil {
			return 0, fmt.Errorf("irdrop: %s: %w", method, err)
		}
		for i := range v {
			if d := math.Abs(v[i] - vExact[i]); d > worst {
				worst = d
			}
		}
	}
	return worst, nil
}

// SingleDie2D derives the paper's "2D DDR3" validation design from a stack
// spec: one die, same floorplan and PDN options (§2.2 generates a 2D DDR3
// design with the same CAD method for the EPS comparison).
func SingleDie2D(spec *pdn.Spec) *pdn.Spec {
	s := spec.Clone()
	s.Name = spec.Name + "/2d"
	s.NumDRAM = 1
	s.OnLogic = false
	s.Logic = nil
	s.LogicTech = nil
	s.LogicUsage = nil
	s.DedicatedTSV = false
	s.Bonding = pdn.F2B
	s.WireBond = false
	return s
}
