package irdrop

import (
	"sync"
	"testing"

	"pdn3d/internal/powermap"
)

// Hammer the analyzer from many goroutines: every distinct (state, io) key
// must be solved exactly once (singleflight), all callers of one key must
// get the same *Result, and the whole thing must be clean under -race.
func TestAnalyzeConcurrentExactlyOnce(t *testing.T) {
	a, err := New(coarseSpec(t), powermap.StackedDDR3Power(), nil)
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		counts []int
		io     float64
	}
	points := []point{
		{[]int{1, 0, 0, 0}, 1.0},
		{[]int{0, 2, 0, 0}, 1.0},
		{[]int{0, 0, 0, 2}, 0.5},
		{[]int{1, 1, 1, 1}, 1.0},
		{[]int{0, 0, 0, 0}, 0.0},
	}
	const goroutinesPerPoint = 16
	results := make([][]*Result, len(points))
	for i := range results {
		results[i] = make([]*Result, goroutinesPerPoint)
	}
	var wg sync.WaitGroup
	for pi, p := range points {
		for g := 0; g < goroutinesPerPoint; g++ {
			wg.Add(1)
			go func(pi, g int, p point) {
				defer wg.Done()
				r, err := a.AnalyzeCounts(p.counts, p.io)
				if err != nil {
					t.Error(err)
					return
				}
				results[pi][g] = r
			}(pi, g, p)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for pi := range results {
		for g := 1; g < goroutinesPerPoint; g++ {
			if results[pi][g] != results[pi][0] {
				t.Errorf("point %d: goroutine %d got a different *Result — key solved more than once", pi, g)
			}
		}
	}
	if got := a.Solves(); got != len(points) {
		t.Errorf("analyzer ran %d solves for %d distinct keys; want exactly one each", got, len(points))
	}
}
