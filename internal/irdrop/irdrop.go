// Package irdrop is the end-to-end DC IR-drop analysis engine: it couples
// an R-Mesh model with the DRAM and logic power models, solves the nodal
// system for a memory state, and reports the per-die and stack-wide maximum
// IR drops that every experiment in the paper is built on.
//
// An Analyzer reuses its conductance matrix across memory states (only the
// right-hand side changes) and memoizes results by state, which is what
// makes look-up-table generation and design-space sweeps tractable — the
// same property the paper exploits by replacing EPS extraction with the
// R-Mesh (§2.2).
package irdrop

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"pdn3d/internal/memstate"
	"pdn3d/internal/obs"
	"pdn3d/internal/par"
	"pdn3d/internal/pdn"
	"pdn3d/internal/powermap"
	"pdn3d/internal/rmesh"
	"pdn3d/internal/solve"
)

// Analyzer runs IR-drop analyses on one design.
type Analyzer struct {
	// Model is the assembled R-Mesh.
	Model *rmesh.Model
	// DRAMPower is the DRAM die power model.
	DRAMPower *powermap.DRAMModel
	// LogicPower is the host logic power model (nil off-chip, or when the
	// logic die should be analyzed unloaded).
	LogicPower *powermap.LogicModel
	// Opts selects and tunes the solver. The zero value selects the default
	// method with tolerances good for millivolt-accurate results. Set it
	// before the first Analyze call; it must not change afterwards.
	Opts solve.Options
	// Warm, when non-nil, seeds every solve with the most recent solution
	// published to the cell and publishes each completed solution back.
	// Warm-started solves converge to the same tolerance but are NOT
	// byte-identical to cold ones — leave Warm nil wherever bit-stable
	// outputs are promised (golden tables, the serve determinism
	// contract). Set it before the first Analyze call.
	Warm *WarmStart
	// SolveRecords, when non-nil, receives a flight record of every nodal
	// solve this analyzer runs — trajectory, coefficients, condition
	// estimate, termination — linked to the request trace when one is in
	// ctx. Recording never changes analysis results. Set it before the
	// first Analyze call.
	SolveRecords *obs.SolveBuffer

	results par.Group[*Result]
	solves  atomic.Int64
	obs     *obs.Registry
}

// WarmStart is a shared warm-start cell: consecutive solves over
// near-identical systems (a value sweep over one topology) publish their
// solutions and seed from the latest one. The zero value is ready to use;
// a nil *WarmStart is inert. Safe for concurrent use — readers get some
// recent complete solution, never a torn one.
type WarmStart struct {
	v atomic.Pointer[[]float64]
}

// Seed returns the latest published solution if it matches dimension n,
// nil otherwise. The returned slice must be treated as read-only.
func (w *WarmStart) Seed(n int) []float64 {
	if w == nil {
		return nil
	}
	p := w.v.Load()
	if p == nil || len(*p) != n {
		return nil
	}
	return *p
}

// Publish stores x as the latest solution. The caller must not mutate x
// afterwards.
func (w *WarmStart) Publish(x []float64) {
	if w == nil || x == nil {
		return
	}
	w.v.Store(&x)
}

// Result is one IR-drop analysis outcome.
type Result struct {
	// State is the analyzed memory state.
	State memstate.State
	// IO is the per-die I/O activity used.
	IO float64
	// MaxIR is the maximum IR drop over all DRAM dies in volts — the
	// number the paper's tables report (in mV).
	MaxIR float64
	// PerDie is the per-DRAM-die maximum IR drop in volts.
	PerDie []float64
	// LogicIR is the logic die's maximum IR drop (0 when absent).
	LogicIR float64
	// TotalPower is the summed DRAM stack power in mW.
	TotalPower float64
	// ActiveDiePower is the power of one active die in mW (0 if none).
	ActiveDiePower float64
	// Stats reports the solve.
	Stats solve.CGStats
	// IR holds the full per-node IR-drop vector (volts) for map export.
	IR []float64
}

// New builds an Analyzer for a design.
func New(spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel) (*Analyzer, error) {
	return NewObs(spec, dramPower, logicPower, nil)
}

// NewObs is New with instrumentation: the mesh build, solver setup, and
// every solve report into reg, and the analyzer's result memoization
// reports hit/miss counts under "irdrop.result_cache.*". A nil registry
// disables instrumentation; analysis results are identical either way.
func NewObs(spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel, reg *obs.Registry) (*Analyzer, error) {
	if err := validatePowers(spec, dramPower, logicPower); err != nil {
		return nil, err
	}
	m, err := rmesh.BuildObs(spec, reg)
	if err != nil {
		return nil, err
	}
	return newAnalyzer(m, dramPower, logicPower, reg), nil
}

// NewFromTopology builds an Analyzer by restamping spec's values over an
// already-frozen mesh topology, skipping geometry and symbolic work. The
// restamped matrix is bit-identical to a full build's, so analysis
// results are too. spec must share t's topology key.
func NewFromTopology(t *rmesh.Topology, spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel) (*Analyzer, error) {
	return NewFromTopologyObs(t, spec, dramPower, logicPower, nil)
}

// NewFromTopologyObs is NewFromTopology with instrumentation (see NewObs);
// the mesh reports under "rmesh.restamps" instead of "rmesh.builds".
func NewFromTopologyObs(t *rmesh.Topology, spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel, reg *obs.Registry) (*Analyzer, error) {
	if err := validatePowers(spec, dramPower, logicPower); err != nil {
		return nil, err
	}
	m, err := t.NewModelObs(spec, reg)
	if err != nil {
		return nil, err
	}
	return newAnalyzer(m, dramPower, logicPower, reg), nil
}

func validatePowers(spec *pdn.Spec, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel) error {
	if err := dramPower.Validate(); err != nil {
		return err
	}
	if logicPower != nil {
		if err := logicPower.Validate(); err != nil {
			return err
		}
		if !spec.OnLogic {
			return fmt.Errorf("irdrop: logic power given for an off-chip design")
		}
	}
	return nil
}

func newAnalyzer(m *rmesh.Model, dramPower *powermap.DRAMModel, logicPower *powermap.LogicModel, reg *obs.Registry) *Analyzer {
	a := &Analyzer{
		Model:      m,
		DRAMPower:  dramPower,
		LogicPower: logicPower,
		Opts:       solve.Options{CGOptions: solve.CGOptions{Tol: 1e-8, MaxIter: 60000}, Obs: reg},
		obs:        reg,
	}
	a.results.Hits = reg.Counter("irdrop.result_cache.hits")
	a.results.Misses = reg.Counter("irdrop.result_cache.misses")
	return a
}

// Spec returns the analyzed design.
func (a *Analyzer) Spec() *pdn.Spec { return a.Model.Spec }

// Analyze solves the design under the given memory state and I/O activity.
// Results are memoized by (state, io). Analyze is safe for concurrent use:
// the conductance matrix is immutable after Build, each solve works on its
// own vectors, and concurrent misses on the same key are deduplicated so
// every (state, io) pair is solved exactly once.
func (a *Analyzer) Analyze(state memstate.State, io float64) (*Result, error) {
	key := state.Key() + "@" + strconv.FormatFloat(io, 'g', -1, 64)
	return a.results.Do(key, func() (*Result, error) {
		a.solves.Add(1)
		return a.analyze(state, io)
	})
}

// Solves reports how many nodal solves the analyzer has run — cache hits
// and deduplicated concurrent misses do not count. Exposed for the
// exactly-once concurrency tests and solve-count accounting.
func (a *Analyzer) Solves() int { return int(a.solves.Load()) }

// AnalyzeCtx is Analyze with cooperative cancellation and WITHOUT the
// analyzer's unbounded memoization: ctx is polled at every solver
// iteration, so an abandoned request stops at the next iteration boundary.
// The serving layer uses this — it brings its own bounded LRU and
// singleflight, and per-request cancellation must not poison a shared
// memo entry that other callers would then retry. When ctx carries a
// request-trace span (obs.WithSpan), the analysis records "stamp" and
// "solve" child spans under it, the latter annotated with the solver's
// iteration count; with no span in ctx tracing is a no-op. A completed
// solve returns values identical to Analyze's.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, state memstate.State, io float64) (*Result, error) {
	opts := a.Opts
	opts.Cancel = ctx.Err
	a.solves.Add(1)
	return a.analyzeOpts(ctx, state, io, opts)
}

// AnalyzeCounts is Analyze for a bare per-die count vector using the
// worst-case edge placement (paper §5.1).
func (a *Analyzer) AnalyzeCounts(counts []int, io float64) (*Result, error) {
	st, err := memstate.FromCounts(counts, memstate.WorstCaseEdge(a.Spec().DRAM.NumBanks))
	if err != nil {
		return nil, err
	}
	return a.Analyze(st, io)
}

// LoadedRHS assembles the folded right-hand side for a state without
// solving — ties plus all DRAM and logic loads. Used by the netlist
// exporter.
func (a *Analyzer) LoadedRHS(state memstate.State, io float64) ([]float64, error) {
	spec := a.Spec()
	m := a.Model
	rhs := m.BaseRHS()
	for d := 0; d < spec.NumDRAM; d++ {
		var banks []int
		if d < len(state.Dies) {
			banks = state.Dies[d]
		}
		loads, err := a.DRAMPower.Loads(spec.DRAM, banks, io)
		if err != nil {
			return nil, err
		}
		if err := m.AddDRAMLoads(rhs, d, loads); err != nil {
			return nil, err
		}
	}
	if a.LogicPower != nil {
		loads, err := a.LogicPower.Loads(spec.Logic)
		if err != nil {
			return nil, err
		}
		if err := m.AddLogicLoads(rhs, loads); err != nil {
			return nil, err
		}
	}
	return rhs, nil
}

func (a *Analyzer) analyze(state memstate.State, io float64) (*Result, error) {
	return a.analyzeOpts(context.Background(), state, io, a.Opts)
}

// stampLoads folds state's DRAM and logic loads into rhs, accumulating
// the power bookkeeping fields of res. Split out of analyzeOpts so the
// "stamp" trace span brackets exactly this work and is closed on the
// error paths too.
func (a *Analyzer) stampLoads(state memstate.State, io float64, rhs []float64, res *Result) error {
	spec := a.Spec()
	for d := 0; d < spec.NumDRAM; d++ {
		var banks []int
		if d < len(state.Dies) {
			banks = state.Dies[d]
		}
		loads, err := a.DRAMPower.Loads(spec.DRAM, banks, io)
		if err != nil {
			return err
		}
		p := powermap.TotalPower(loads)
		res.TotalPower += p
		if len(banks) > 0 {
			res.ActiveDiePower = p
		}
		if err := a.Model.AddDRAMLoads(rhs, d, loads); err != nil {
			return err
		}
	}
	if a.LogicPower != nil {
		loads, err := a.LogicPower.Loads(spec.Logic)
		if err != nil {
			return err
		}
		if err := a.Model.AddLogicLoads(rhs, loads); err != nil {
			return err
		}
	}
	return nil
}

func (a *Analyzer) analyzeOpts(ctx context.Context, state memstate.State, io float64, opts solve.Options) (*Result, error) {
	defer a.obs.Timer("irdrop.analyze_time").Start()()
	spec := a.Spec()
	if state.NumDies() > spec.NumDRAM {
		return nil, fmt.Errorf("irdrop: state has %d dies, design has %d", state.NumDies(), spec.NumDRAM)
	}
	parent := obs.SpanFrom(ctx)
	m := a.Model
	rhs := m.BaseRHS()
	res := &Result{State: state, IO: io, PerDie: make([]float64, spec.NumDRAM)}
	stamp := parent.Child("stamp")
	err := a.stampLoads(state, io, rhs, res)
	stamp.End()
	if err != nil {
		return nil, err
	}
	solveSpan := parent.Child("solve")
	opts.Span = solveSpan
	if opts.X0 == nil {
		if seed := a.Warm.Seed(m.N()); seed != nil {
			opts.X0 = seed
			solveSpan.Annotate(obs.A("warm", true))
		}
	}
	rec := a.SolveRecords.StartSolveRecord()
	rec.SetTrace(obs.TraceFrom(ctx).ID())
	opts.Rec = rec
	v, stats, err := m.Solve(rhs, opts)
	solveSpan.End()
	// Commit on the error path too: a failed or cancelled solve is exactly
	// the record /debug/solves exists to surface.
	rec.Commit()
	if err != nil {
		return nil, fmt.Errorf("irdrop: %s state %s: %w", spec.Name, state, err)
	}
	// Publish after success: v is not retained anywhere else (IR below is
	// a fresh slice), so later seeds read an immutable solution.
	a.Warm.Publish(v)
	res.Stats = stats
	res.IR = m.IRDrop(v)
	for d := 0; d < spec.NumDRAM; d++ {
		res.PerDie[d] = m.DieMaxIR(res.IR, d)
		if res.PerDie[d] > res.MaxIR {
			res.MaxIR = res.PerDie[d]
		}
	}
	if spec.OnLogic {
		res.LogicIR = m.DieMaxIR(res.IR, rmesh.DieLogic)
	}
	// Max over all analyzed states: order-independent, so deterministic.
	a.obs.Gauge("irdrop.max_ir_v").SetMax(res.MaxIR)
	return res, nil
}

// MaxIRmV returns the stack maximum IR drop in millivolts.
func (r *Result) MaxIRmV() float64 { return r.MaxIR * 1000 }

// LogicIRmV returns the logic die maximum IR drop in millivolts.
func (r *Result) LogicIRmV() float64 { return r.LogicIR * 1000 }
