package irdrop

import (
	"fmt"
	"sort"

	"pdn3d/internal/rmesh"
)

// CrowdingStats summarizes the current distribution over one branch kind —
// the DC current-crowding view of the paper's TSV analysis reference
// (Zhao et al. [6]): misaligned or badly placed TSVs draw unequal shares
// of the supply current, stressing individual vias.
type CrowdingStats struct {
	// Kind is the branch class.
	Kind rmesh.LinkKind
	// Count is the branch population.
	Count int
	// TotalMA, MaxMA, MeanMA are the summed, peak and mean branch
	// currents in milliamps.
	TotalMA, MaxMA, MeanMA float64
	// Crowding is MaxMA / MeanMA (1.0 = perfectly balanced).
	Crowding float64
	// P95MA is the 95th-percentile branch current in mA.
	P95MA float64
}

// Crowding computes per-kind branch current statistics from an analysis
// result's voltage solution.
func (a *Analyzer) Crowding(r *Result) ([]CrowdingStats, error) {
	if len(r.IR) != a.Model.N() {
		return nil, fmt.Errorf("irdrop: result does not carry a full IR vector")
	}
	// Node voltages from IR drops.
	v := make([]float64, len(r.IR))
	for i, d := range r.IR {
		v[i] = a.Model.VDD - d
	}
	byKind := map[rmesh.LinkKind][]float64{}
	for _, l := range a.Model.Links {
		byKind[l.Kind] = append(byKind[l.Kind], l.Current(v, a.Model.VDD)*1000) // mA
	}
	kinds := make([]rmesh.LinkKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var out []CrowdingStats
	for _, k := range kinds {
		cur := byKind[k]
		sort.Float64s(cur)
		s := CrowdingStats{Kind: k, Count: len(cur)}
		for _, c := range cur {
			s.TotalMA += c
			if c > s.MaxMA {
				s.MaxMA = c
			}
		}
		s.MeanMA = s.TotalMA / float64(len(cur))
		if s.MeanMA > 0 {
			s.Crowding = s.MaxMA / s.MeanMA
		}
		s.P95MA = cur[(len(cur)*95)/100]
		out = append(out, s)
	}
	return out, nil
}
